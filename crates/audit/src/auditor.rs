//! The dispute-resolution engine.
//!
//! For every link instance (topic, seq, subscriber) the auditor confronts
//! the publisher's and subscriber's entries with each other and with the
//! registered public keys, realizing the paper's Lemmas 1–3:
//!
//! * **Unforgeability** — an entry whose recorded counterpart signature is
//!   invalid is a fabrication (exchanged signatures are transport-enforced
//!   valid, requirement (4));
//! * **Completeness** — a valid counterpart entry proves the transmission,
//!   so a missing entry is recovered as *hidden*;
//! * **Correctness** — when the two sides disagree on the data, the side
//!   whose claim the *other party's* signature endorses wins; the other
//!   entry is falsified.
//!
//! Theorem 1 (faithful components are always classified valid) and
//! Theorem 2 (in a collusion-free system every unfaithful act is detected)
//! follow from this per-link analysis and are exercised as integration
//! tests.

use crate::classify::{Anomaly, EntryClass, HiddenRecord, InvalidReason, LinkAudit};
use adlp_crypto::pkcs1;
use adlp_crypto::sha256::{binding_digest, Digest};
use adlp_logger::{Direction, GapReceipt, KeyRegistry, LogEntry, LogStore};
use adlp_pubsub::{NodeId, Topic};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The auditor: public keys + topology.
#[derive(Debug, Clone)]
pub struct Auditor {
    keys: KeyRegistry,
    topology: HashMap<Topic, NodeId>,
    /// Cap on missing seqs reported per gap anomaly.
    gap_report_limit: usize,
}

/// What a component did wrong, as established by the audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The topic involved.
    pub topic: Topic,
    /// The sequence number involved.
    pub seq: u64,
    /// The kind of unfaithful act.
    pub kind: ViolationKind,
}

/// Kinds of unfaithful acts attributable to a single component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ViolationKind {
    /// Hid a publication record (Lemma 2).
    HidPublication,
    /// Hid a receipt record (Lemma 2).
    HidReceipt,
    /// Logged data contradicting provable evidence (Lemma 3).
    FalsifiedLog,
    /// Entered a record of a transmission that never happened (Lemma 1).
    FabricatedLog,
    /// Entered a replayed (duplicate-seq) record.
    ReplayedLog,
}

/// Per-component audit outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComponentVerdict {
    /// Entries classified valid.
    pub valid_entries: usize,
    /// Established violations.
    pub violations: Vec<Violation>,
}

impl ComponentVerdict {
    /// Whether the audit found this component faithful.
    pub fn is_faithful(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The complete audit output.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Per-link results.
    pub links: Vec<LinkAudit>,
    /// Recovered hidden records (L̂_H).
    pub hidden: Vec<HiddenRecord>,
    /// Per-component verdicts.
    pub verdicts: BTreeMap<NodeId, ComponentVerdict>,
    /// Non-attributable suspicious observations.
    pub anomalies: Vec<Anomaly>,
    /// Entries rejected before link analysis (authenticity failures etc.),
    /// with their reasons.
    pub rejected_entries: Vec<(LogEntry, InvalidReason)>,
    /// Verified gap receipts: signed admissions of shed ranges. Absences
    /// they cover classify as [`EntryClass::Shed`], not hidden.
    pub shed: Vec<GapReceipt>,
}

impl AuditReport {
    /// Components with at least one established violation.
    pub fn unfaithful_components(&self) -> Vec<(&NodeId, &ComponentVerdict)> {
        self.verdicts
            .iter()
            .filter(|(_, v)| !v.is_faithful())
            .collect()
    }

    /// Whether every observed entry was classified valid and nothing was
    /// hidden — the ideal system (`L_C* = L_C = L_{V,f}`).
    ///
    /// Three classes of observation do not spoil a clear report because
    /// they are not evidence of wrongdoing:
    ///
    /// * **sequence gaps** — acknowledgement gating legitimately skips
    ///   per-connection sends (the protocol's non-cooperation penalty);
    /// * **unproven entries** — a publisher whose send was never
    ///   acknowledged (e.g. messages in flight at shutdown) cannot prove
    ///   it, but is not thereby convicted (Lemma 1 cuts both ways);
    /// * **shed absences** — a verified gap receipt is a signed admission
    ///   of bounded overload loss, the opposite of hiding.
    ///
    /// All still appear in the report for forensic review.
    pub fn all_clear(&self) -> bool {
        let acceptable = |c: &EntryClass| {
            matches!(
                c,
                EntryClass::Valid | EntryClass::Unproven | EntryClass::Shed { .. }
            )
        };
        self.hidden.is_empty()
            && self.rejected_entries.is_empty()
            && self
                .anomalies
                .iter()
                .all(|a| matches!(a, Anomaly::SequenceGap { .. }))
            && self.verdicts.values().all(ComponentVerdict::is_faithful)
            && self.links.iter().all(|l| {
                l.publisher_entry.as_ref().is_none_or(&acceptable)
                    && l.subscriber_entry.as_ref().is_none_or(&acceptable)
            })
    }

    /// Total links audited.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    fn record_violation(&mut self, who: &NodeId, topic: &Topic, seq: u64, kind: ViolationKind) {
        self.verdicts
            .entry(who.clone())
            .or_default()
            .violations
            .push(Violation {
                topic: topic.clone(),
                seq,
                kind,
            });
    }

    fn record_valid(&mut self, who: &NodeId) {
        self.verdicts.entry(who.clone()).or_default().valid_entries += 1;
    }
}

/// One side's evidence for a link, after authenticity screening.
struct SideEvidence {
    /// Digest of the data this side claims.
    claimed: Digest,
    /// Acknowledgement fields (publisher side): `(h(D_y), s_y)` verified
    /// against the subscriber's key.
    ack: Option<AckEvidence>,
    /// Subscriber side: whether the recorded `s_x` verifies the claimed
    /// digest under the publisher's key.
    peer_sig_valid: bool,
}

struct AckEvidence {
    hash: Digest,
    sig_valid: bool,
}

impl Auditor {
    /// Creates an auditor over a key registry.
    pub fn new(keys: KeyRegistry) -> Self {
        Auditor {
            keys,
            topology: HashMap::new(),
            gap_report_limit: 16,
        }
    }

    /// Supplies the topic→publisher topology (from the master, or from
    /// deployment records).
    pub fn with_topology(mut self, topology: impl IntoIterator<Item = (Topic, NodeId)>) -> Self {
        self.topology.extend(topology);
        self
    }

    /// Audits everything in a store (undecodable records are rejected).
    pub fn audit_store(&self, store: &LogStore) -> AuditReport {
        let entries: Vec<LogEntry> = store
            .entries()
            .into_iter()
            .filter_map(Result::ok)
            .collect();
        self.audit(&entries)
    }

    /// Audits a set of entries.
    pub fn audit(&self, entries: &[LogEntry]) -> AuditReport {
        let mut report = AuditReport::default();

        // Phase 0: gap receipts — signed admissions of shed ranges — are
        // pulled out before link bucketing (a receipt reuses the first shed
        // seq as its entry seq and would otherwise read as a replay).
        let mut receipt_candidates: Vec<(GapReceipt, &LogEntry)> = Vec::new();
        let mut normal: Vec<&LogEntry> = Vec::new();
        for entry in entries {
            if !GapReceipt::claims_receipt(entry) {
                normal.push(entry);
                continue;
            }
            if let Some(reason) = self.screen(entry) {
                if reason == InvalidReason::AuthenticityFailure {
                    report.anomalies.push(Anomaly::ImpersonationSuspected {
                        claimed: entry.component.clone(),
                        topic: entry.topic.clone(),
                        seq: entry.seq,
                    });
                }
                report.rejected_entries.push((entry.clone(), reason));
                continue;
            }
            // Decoding enforces the envelope/payload agreement; an unsigned
            // receipt admits nothing and is rejected outright.
            match GapReceipt::from_entry(entry).filter(|r| r.well_formed()) {
                Some(r) if entry.own_sig.is_some() => receipt_candidates.push((r, entry)),
                _ => report
                    .rejected_entries
                    .push((entry.clone(), InvalidReason::InvalidGapReceipt)),
            }
        }

        // Phase 1: per-entry screening (authenticity, publisher ownership,
        // duplicates). Aggregated entries are expanded into per-link views.
        let mut pub_entries: BTreeMap<(Topic, u64, NodeId), PubView<'_>> = BTreeMap::new();
        let mut sub_entries: BTreeMap<(Topic, u64, NodeId), &LogEntry> = BTreeMap::new();
        // Naive-scheme publisher entries name no subscriber; they pair by
        // (topic, seq) with every subscriber record of that transmission.
        let mut naive_pubs: BTreeMap<(Topic, u64), PubView<'_>> = BTreeMap::new();
        // Screened deposits per (component, topic, direction) — the ground
        // truth a lying receipt contradicts.
        let mut deposited: HashMap<(NodeId, Topic, Direction), BTreeSet<u64>> = HashMap::new();

        for entry in normal {
            if let Some(reason) = self.screen(entry) {
                if reason == InvalidReason::AuthenticityFailure {
                    report.anomalies.push(Anomaly::ImpersonationSuspected {
                        claimed: entry.component.clone(),
                        topic: entry.topic.clone(),
                        seq: entry.seq,
                    });
                }
                report.rejected_entries.push((entry.clone(), reason));
                continue;
            }
            deposited
                .entry((entry.component.clone(), entry.topic.clone(), entry.direction))
                .or_default()
                .insert(entry.seq);
            match entry.direction {
                Direction::Out => {
                    if !entry.is_adlp() && entry.peer.is_none() {
                        naive_pubs.insert(
                            (entry.topic.clone(), entry.seq),
                            PubView { entry, ack_of: None },
                        );
                    } else if entry.acks.is_empty() {
                        let subscriber = entry.peer.clone().unwrap_or_else(|| NodeId::new("?"));
                        let key = (entry.topic.clone(), entry.seq, subscriber.clone());
                        if pub_entries.contains_key(&key) {
                            report.record_violation(
                                &entry.component,
                                &entry.topic,
                                entry.seq,
                                ViolationKind::ReplayedLog,
                            );
                            report
                                .rejected_entries
                                .push((entry.clone(), InvalidReason::DuplicateSeq));
                            continue;
                        }
                        pub_entries.insert(key, PubView { entry, ack_of: None });
                    } else {
                        // Aggregated: one view per acknowledged subscriber.
                        for (i, ack) in entry.acks.iter().enumerate() {
                            let key =
                                (entry.topic.clone(), entry.seq, ack.subscriber.clone());
                            pub_entries.insert(key, PubView { entry, ack_of: Some(i) });
                        }
                    }
                }
                Direction::In => {
                    let key = (entry.topic.clone(), entry.seq, entry.component.clone());
                    if sub_entries.contains_key(&key) {
                        report.record_violation(
                            &entry.component,
                            &entry.topic,
                            entry.seq,
                            ViolationKind::ReplayedLog,
                        );
                        report
                            .rejected_entries
                            .push((entry.clone(), InvalidReason::DuplicateSeq));
                        continue;
                    }
                    sub_entries.insert(key, entry);
                }
            }
        }

        // Phase 1.5: receipt verification — collapse re-delivered
        // duplicates, then reject receipts that overlap a sibling or
        // contradict entries the claiming component actually deposited.
        let shed = Self::verify_receipts(receipt_candidates, &deposited, &mut report);

        // Phase 2: per-link confrontation.
        let mut link_keys: BTreeSet<(Topic, u64, NodeId)> = BTreeSet::new();
        link_keys.extend(pub_entries.keys().cloned());
        link_keys.extend(sub_entries.keys().cloned());
        let mut consumed_naive: BTreeSet<(Topic, u64)> = BTreeSet::new();

        for key in link_keys {
            let (topic, seq, subscriber) = key.clone();
            let pub_side = pub_entries.get(&key).or_else(|| {
                let nk = (topic.clone(), seq);
                let view = naive_pubs.get(&nk);
                if view.is_some() {
                    consumed_naive.insert(nk);
                }
                view
            });
            let publisher = self
                .topology
                .get(&topic)
                .cloned()
                .or_else(|| {
                    pub_side
                        .map(|v| v.entry.component.clone())
                        .or_else(|| sub_entries.get(&key).and_then(|e| e.peer.clone()))
                })
                .unwrap_or_else(|| NodeId::new("?"));
            let link = self.audit_link(
                &topic,
                seq,
                &publisher,
                &subscriber,
                pub_side,
                sub_entries.get(&key).copied(),
                &shed,
                &mut report,
            );
            report.hidden.extend(link.hidden.iter().cloned());
            report.links.push(link);
        }

        // Naive publisher entries nobody subscribed against: lone, unprovable.
        for ((topic, seq), view) in &naive_pubs {
            if consumed_naive.contains(&(topic.clone(), *seq)) {
                continue;
            }
            let publisher = self
                .topology
                .get(topic)
                .cloned()
                .unwrap_or_else(|| view.entry.component.clone());
            let link = self.audit_link(
                topic,
                *seq,
                &publisher,
                &NodeId::new("?"),
                Some(view),
                None,
                &shed,
                &mut report,
            );
            report.links.push(link);
        }

        // Phase 3: sequence-gap anomalies per (topic, subscriber).
        self.detect_gaps(&mut report, &shed);

        report.shed = shed;
        report
    }

    /// Verifies receipt candidates against each other and against actual
    /// deposits. Identical duplicates are benign (the deposit path
    /// re-delivers a receipt whose first submission was reported lost);
    /// overlapping or contradicted receipts are rejected as invalid.
    fn verify_receipts(
        mut candidates: Vec<(GapReceipt, &LogEntry)>,
        deposited: &HashMap<(NodeId, Topic, Direction), BTreeSet<u64>>,
        report: &mut AuditReport,
    ) -> Vec<GapReceipt> {
        let mut seen: Vec<GapReceipt> = Vec::new();
        candidates.retain(|(r, _)| {
            if seen.contains(r) {
                false
            } else {
                seen.push(r.clone());
                true
            }
        });
        let mut verified = Vec::new();
        for (i, (r, entry)) in candidates.iter().enumerate() {
            let overlapping = candidates
                .iter()
                .enumerate()
                .any(|(j, (o, _))| i != j && r.overlaps(o));
            let contradicted = deposited
                .get(&(r.component.clone(), r.topic.clone(), r.direction))
                .is_some_and(|seqs| seqs.range(r.first_seq..=r.last_seq).next().is_some());
            if overlapping || contradicted {
                report
                    .rejected_entries
                    .push(((*entry).clone(), InvalidReason::InvalidGapReceipt));
            } else {
                verified.push(r.clone());
            }
        }
        verified
    }

    /// Pre-link screening. Returns a rejection reason, if any.
    fn screen(&self, entry: &LogEntry) -> Option<InvalidReason> {
        if entry.direction == Direction::Out {
            if let Some(owner) = self.topology.get(&entry.topic) {
                if owner != &entry.component {
                    return Some(InvalidReason::WrongPublisher);
                }
            }
        }
        if let Some(own_sig) = &entry.own_sig {
            let Some(key) = self.keys.get(&entry.component) else {
                return Some(InvalidReason::UnknownComponent);
            };
            // Signatures cover the binding digest h(seq ‖ h(D)): a
            // relabeled sequence number fails right here instead of
            // framing the counterpart.
            let bound =
                binding_digest(entry.topic.as_str(), entry.seq, &entry.payload.digest());
            if !pkcs1::verify_digest(&key, &bound, own_sig) {
                return Some(InvalidReason::AuthenticityFailure);
            }
        }
        None
    }

    fn pub_evidence(&self, view: &PubView<'_>, subscriber: &NodeId) -> SideEvidence {
        let entry = view.entry;
        let claimed = entry.payload.digest();
        let sub_key = self.keys.get(subscriber);
        let seq = entry.seq;
        let ack = match view.ack_of {
            Some(i) => {
                let a = &entry.acks[i];
                Some(AckEvidence {
                    hash: a.hash,
                    sig_valid: sub_key
                        .as_ref()
                        .map(|k| {
                            pkcs1::verify_digest(
                                k,
                                &binding_digest(entry.topic.as_str(), seq, &a.hash),
                                &a.sig,
                            )
                        })
                        .unwrap_or(false),
                })
            }
            None => match (&entry.peer_hash, &entry.peer_sig) {
                (Some(h), Some(s)) => Some(AckEvidence {
                    hash: *h,
                    sig_valid: sub_key
                        .as_ref()
                        .map(|k| {
                            pkcs1::verify_digest(
                                k,
                                &binding_digest(entry.topic.as_str(), seq, h),
                                s,
                            )
                        })
                        .unwrap_or(false),
                }),
                _ => None,
            },
        };
        SideEvidence {
            claimed,
            ack,
            peer_sig_valid: false,
        }
    }

    fn sub_evidence(&self, entry: &LogEntry, publisher: &NodeId) -> SideEvidence {
        let claimed = entry.payload.digest();
        let peer_sig_valid = match (&entry.peer_sig, self.keys.get(publisher)) {
            (Some(s), Some(k)) => pkcs1::verify_digest(
                &k,
                &binding_digest(entry.topic.as_str(), entry.seq, &claimed),
                s,
            ),
            _ => false,
        };
        SideEvidence {
            claimed,
            ack: None,
            peer_sig_valid,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn audit_link(
        &self,
        topic: &Topic,
        seq: u64,
        publisher: &NodeId,
        subscriber: &NodeId,
        pub_view: Option<&PubView<'_>>,
        sub_entry: Option<&LogEntry>,
        shed: &[GapReceipt],
        report: &mut AuditReport,
    ) -> LinkAudit {
        let mut link = LinkAudit {
            topic: topic.clone(),
            seq,
            publisher: publisher.clone(),
            subscriber: subscriber.clone(),
            publisher_entry: None,
            subscriber_entry: None,
            hidden: Vec::new(),
        };

        // Naive-scheme entries (Definition 2) carry no signatures: nothing
        // can be proven or refuted — exactly the paper's point in §III-B.
        // They classify as Unproven, and a conflict between the two sides is
        // reported as a non-attributable anomaly.
        let naive = pub_view.map(|v| !v.entry.is_adlp()).unwrap_or(false)
            || sub_entry.map(|e| !e.is_adlp()).unwrap_or(false);
        if naive {
            link.publisher_entry = pub_view.map(|_| EntryClass::Unproven);
            link.subscriber_entry = sub_entry.map(|_| EntryClass::Unproven);
            if let (Some(p), Some(s)) = (pub_view, sub_entry) {
                if p.entry.payload.digest() != s.payload.digest() {
                    report.anomalies.push(Anomaly::ConflictingEvidence {
                        topic: topic.clone(),
                        seq,
                        parties: (publisher.clone(), subscriber.clone()),
                    });
                }
            }
            return link;
        }

        let p = pub_view.map(|v| self.pub_evidence(v, subscriber));
        let s = sub_entry.map(|e| self.sub_evidence(e, publisher));

        match (p, s) {
            (Some(p), Some(s)) => self.judge_dispute(topic, seq, publisher, subscriber, p, s, &mut link, report),
            (Some(p), None) => {
                // Only the publisher reported (Lemma 2: the subscriber's
                // receipt is exposed by its own acknowledgement).
                match &p.ack {
                    Some(ack) if ack.sig_valid => {
                        if ack.hash == p.claimed {
                            link.publisher_entry = Some(EntryClass::Valid);
                            report.record_valid(publisher);
                            if let Some((first_seq, last_seq)) =
                                shed_cover(shed, subscriber, topic, Direction::In, seq)
                            {
                                // The subscriber admitted shedding this
                                // receipt record under overload: bounded,
                                // accounted loss — no Lemma 2 verdict.
                                link.subscriber_entry =
                                    Some(EntryClass::Shed { first_seq, last_seq });
                            } else {
                                link.hidden.push(HiddenRecord {
                                    component: subscriber.clone(),
                                    direction: Direction::In,
                                    topic: topic.clone(),
                                    seq,
                                    proven_by: publisher.clone(),
                                });
                                report.record_violation(
                                    subscriber,
                                    topic,
                                    seq,
                                    ViolationKind::HidReceipt,
                                );
                            }
                        } else {
                            // The subscriber committed to different data
                            // than the publisher claims: the publisher's
                            // own record convicts it (Lemma 3 i).
                            link.publisher_entry =
                                Some(EntryClass::Invalid(InvalidReason::FalsifiedPayload));
                            report.record_violation(
                                publisher,
                                topic,
                                seq,
                                ViolationKind::FalsifiedLog,
                            );
                            link.hidden.push(HiddenRecord {
                                component: subscriber.clone(),
                                direction: Direction::In,
                                topic: topic.clone(),
                                seq,
                                proven_by: publisher.clone(),
                            });
                        }
                    }
                    Some(_) => {
                        // Invalid acknowledgement signature: fabrication
                        // (Lemma 1 — a real ack is transport-enforced valid).
                        link.publisher_entry =
                            Some(EntryClass::Invalid(InvalidReason::FabricatedPeerSignature));
                        report.record_violation(
                            publisher,
                            topic,
                            seq,
                            ViolationKind::FabricatedLog,
                        );
                    }
                    None => {
                        // No acknowledgement at all: unproven (Lemma 1 — the
                        // publisher's entry alone cannot prove publication).
                        link.publisher_entry = Some(EntryClass::Unproven);
                    }
                }
            }
            (None, Some(s)) => {
                // Only the subscriber reported.
                if s.peer_sig_valid {
                    // s_x proves the publication (Lemma 2): publisher hid —
                    // unless it admitted shedding the record.
                    link.subscriber_entry = Some(EntryClass::Valid);
                    report.record_valid(subscriber);
                    if let Some((first_seq, last_seq)) =
                        shed_cover(shed, publisher, topic, Direction::Out, seq)
                    {
                        link.publisher_entry = Some(EntryClass::Shed { first_seq, last_seq });
                    } else {
                        link.hidden.push(HiddenRecord {
                            component: publisher.clone(),
                            direction: Direction::Out,
                            topic: topic.clone(),
                            seq,
                            proven_by: subscriber.clone(),
                        });
                        report.record_violation(
                            publisher,
                            topic,
                            seq,
                            ViolationKind::HidPublication,
                        );
                    }
                } else {
                    // Invalid s_x: the subscriber made the record up
                    // (Lemma 1 — fabrication; Figure 8's case (b)).
                    link.subscriber_entry =
                        Some(EntryClass::Invalid(InvalidReason::FabricatedPeerSignature));
                    report.record_violation(subscriber, topic, seq, ViolationKind::FabricatedLog);
                }
            }
            (None, None) => unreachable!("link key without any entry"),
        }
        link
    }

    /// Both sides present: the dispute-resolution core (Lemma 3).
    #[allow(clippy::too_many_arguments)]
    fn judge_dispute(
        &self,
        topic: &Topic,
        seq: u64,
        publisher: &NodeId,
        subscriber: &NodeId,
        p: SideEvidence,
        s: SideEvidence,
        link: &mut LinkAudit,
        report: &mut AuditReport,
    ) {
        let ack_valid = p.ack.as_ref().is_some_and(|a| a.sig_valid);
        let ack_hash = p.ack.as_ref().map(|a| a.hash);

        if p.claimed == s.claimed {
            // Agreement on the data. Check the cross-signatures.
            if !s.peer_sig_valid {
                // The subscriber's recorded s_x is invalid although it agrees
                // on the data: it cannot have received this from the
                // transport (requirement (4)) — fabricated record.
                link.subscriber_entry =
                    Some(EntryClass::Invalid(InvalidReason::FabricatedPeerSignature));
                report.record_violation(subscriber, topic, seq, ViolationKind::FabricatedLog);
            } else {
                link.subscriber_entry = Some(EntryClass::Valid);
                report.record_valid(subscriber);
            }
            match (ack_valid, ack_hash) {
                (true, Some(h)) if h == p.claimed => {
                    link.publisher_entry = Some(EntryClass::Valid);
                    report.record_valid(publisher);
                }
                (true, Some(_)) => {
                    // Valid ack over a *different* hash than both parties
                    // claim — inconsistent publisher record.
                    link.publisher_entry = Some(EntryClass::Valid);
                    report.record_valid(publisher);
                    report.anomalies.push(Anomaly::InconsistentAck {
                        topic: topic.clone(),
                        seq,
                        publisher: publisher.clone(),
                    });
                }
                (false, Some(_)) => {
                    link.publisher_entry =
                        Some(EntryClass::Invalid(InvalidReason::FabricatedPeerSignature));
                    report.record_violation(publisher, topic, seq, ViolationKind::FabricatedLog);
                }
                (_, None) => {
                    // No ack recorded, but the subscriber's (valid) entry
                    // corroborates the publication.
                    if s.peer_sig_valid {
                        link.publisher_entry = Some(EntryClass::Valid);
                        report.record_valid(publisher);
                    } else {
                        link.publisher_entry = Some(EntryClass::Unproven);
                    }
                }
            }
            return;
        }

        // The two sides disagree on the data (the motivating dispute of
        // Figure 3). Decide using the cross-signatures.
        let sub_endorses_pub_claim = ack_valid && ack_hash == Some(p.claimed);
        let pub_endorses_sub_claim = s.peer_sig_valid;

        match (pub_endorses_sub_claim, sub_endorses_pub_claim) {
            (true, false) => {
                // The publisher's key signed what the subscriber recorded:
                // the publisher *did* send s.claimed, its log says
                // otherwise — falsified (Lemma 3 i).
                link.publisher_entry = Some(EntryClass::Invalid(InvalidReason::FalsifiedPayload));
                report.record_violation(publisher, topic, seq, ViolationKind::FalsifiedLog);
                link.subscriber_entry = Some(EntryClass::Valid);
                report.record_valid(subscriber);
            }
            (false, true) => {
                // The subscriber acknowledged what the publisher claims but
                // logged something else — falsified (Lemma 3 ii).
                link.publisher_entry = Some(EntryClass::Valid);
                report.record_valid(publisher);
                link.subscriber_entry = Some(EntryClass::Invalid(InvalidReason::FalsifiedPayload));
                report.record_violation(subscriber, topic, seq, ViolationKind::FalsifiedLog);
            }
            (true, true) => {
                // Each side holds the other's valid signature over a
                // *different* payload: impossible without collusion or key
                // compromise — both records are suspect.
                link.publisher_entry =
                    Some(EntryClass::Invalid(InvalidReason::UnresolvableConflict));
                link.subscriber_entry =
                    Some(EntryClass::Invalid(InvalidReason::UnresolvableConflict));
                report.anomalies.push(Anomaly::ConflictingEvidence {
                    topic: topic.clone(),
                    seq,
                    parties: (publisher.clone(), subscriber.clone()),
                });
            }
            (false, false) => {
                // Neither side's claim is endorsed by the other's key.
                // Whoever recorded an *invalid* counterpart signature
                // fabricated it (Lemma 1).
                if p.ack.is_some() {
                    link.publisher_entry =
                        Some(EntryClass::Invalid(InvalidReason::FabricatedPeerSignature));
                    report.record_violation(publisher, topic, seq, ViolationKind::FabricatedLog);
                } else {
                    link.publisher_entry = Some(EntryClass::Unproven);
                }
                link.subscriber_entry =
                    Some(EntryClass::Invalid(InvalidReason::FabricatedPeerSignature));
                report.record_violation(subscriber, topic, seq, ViolationKind::FabricatedLog);
            }
        }
    }

    /// Detects per-link sequence gaps (possible pairwise hiding — the
    /// unobservable collusion case of §III-B).
    fn detect_gaps(&self, report: &mut AuditReport, shed: &[GapReceipt]) {
        let mut per_link: BTreeMap<(Topic, NodeId), (BTreeSet<u64>, NodeId)> = BTreeMap::new();
        for l in &report.links {
            per_link
                .entry((l.topic.clone(), l.subscriber.clone()))
                .or_insert_with(|| (BTreeSet::new(), l.publisher.clone()))
                .0
                .insert(l.seq);
        }
        for ((topic, subscriber), (seqs, publisher)) in per_link {
            let (&lo, &hi) = match (seqs.first(), seqs.last()) {
                (Some(a), Some(b)) => (a, b),
                _ => continue,
            };
            if hi - lo + 1 == seqs.len() as u64 {
                continue;
            }
            // A forged seq can make the range astronomically wide; walk the
            // observed seqs instead of the full range so enumeration stays
            // O(entries), and cap the sample.
            let mut missing: Vec<u64> = Vec::new();
            let mut prev = lo;
            'scan: for &s in seqs.iter().skip(1) {
                let mut gap = prev + 1;
                while gap < s {
                    // A seq either side admitted shedding is accounted for
                    // — not a possible pairwise hide.
                    let excused = shed_cover(shed, &publisher, &topic, Direction::Out, gap)
                        .is_some()
                        || shed_cover(shed, &subscriber, &topic, Direction::In, gap).is_some();
                    if !excused {
                        missing.push(gap);
                        if missing.len() >= self.gap_report_limit {
                            break 'scan;
                        }
                    }
                    gap += 1;
                }
                prev = s;
            }
            if missing.is_empty() {
                continue;
            }
            report.anomalies.push(Anomaly::SequenceGap {
                topic,
                subscriber,
                missing,
            });
        }
    }
}

struct PubView<'a> {
    entry: &'a LogEntry,
    /// Index into `entry.acks` when this view came from an aggregated entry.
    ack_of: Option<usize>,
}

/// Finds the verified receipt (if any) by which `component` admitted
/// shedding its `direction` entry for `(topic, seq)`.
fn shed_cover(
    shed: &[GapReceipt],
    component: &NodeId,
    topic: &Topic,
    direction: Direction,
    seq: u64,
) -> Option<(u64, u64)> {
    shed.iter()
        .find(|r| {
            &r.component == component
                && &r.topic == topic
                && r.direction == direction
                && r.covers(seq)
        })
        .map(|r| (r.first_seq, r.last_seq))
}
