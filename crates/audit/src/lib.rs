//! The ADLP auditor.
//!
//! Given the trusted logger's contents — log entries, the public-key
//! registry, and the topic→publisher topology — the auditor implements the
//! paper's analysis (§IV-B):
//!
//! * [`classify`] — the classification lattice of Figure 5: every observed
//!   entry lands in **valid** (L̂_V), **invalid** (L̂_I, with the reason),
//!   or **unproven**; hidden entries (L̂_H) are recovered from counterpart
//!   evidence;
//! * [`auditor`] — the per-link dispute-resolution engine realizing
//!   Lemmas 1–3 (unforgeability, completeness, correctness) and the
//!   component verdicts of Theorems 1–2;
//! * [`causality`] — the temporal-causality checker of Lemma 4;
//! * [`collusion`] — collusion groups (Definition 1): maximal-group
//!   computation over known or suspected collusion edges;
//! * [`provenance`] — reconstruction of the proven data-flow graph and
//!   backward tracing from a faulty output to its upstream evidence;
//! * [`recovery`] — post-crash classification of a recovered log against a
//!   retained commitment: intact, truncated tail, or tamper evidence.
//!
//! # Example
//!
//! ```no_run
//! use adlp_audit::Auditor;
//! use adlp_logger::LogServer;
//!
//! let server = LogServer::spawn();
//! // ... run the system, components deposit entries ...
//! let handle = server.handle();
//! let auditor = Auditor::new(handle.keys().clone())
//!     .with_topology([("image".into(), "camera".into())]);
//! let report = auditor.audit_store(handle.store());
//! for verdict in report.unfaithful_components() {
//!     println!("unfaithful: {verdict:?}");
//! }
//! ```

pub mod auditor;
pub mod causality;
pub mod cluster;
pub mod classify;
pub mod collusion;
pub mod forensic;
pub mod incremental;
pub mod provenance;
pub mod recovery;
pub mod render;

pub use auditor::{AuditReport, Auditor, ComponentVerdict, Violation, ViolationKind};
pub use causality::{CausalityChecker, CausalityViolation, FlowStep};
pub use cluster::{ClusterAuditReport, ClusterAuditor, SealCheck};
pub use classify::{Anomaly, EntryClass, HiddenRecord, InvalidReason, LinkAudit};
pub use collusion::CollusionGroups;
pub use forensic::{canonical_report_bytes, contestable_verdicts, ContestedVerdict};
pub use incremental::AuditSession;
pub use provenance::{FlowEdge, ImpactNode, ProvenanceGraph, ProvenanceNode};
pub use render::{Rendered, RenderedCluster};
pub use recovery::{
    verify_recovered_store, RecoveryCheck, RecoveryVerdict, RetainedCommitment,
};
