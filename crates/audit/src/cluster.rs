//! Auditing a sharded, replicated logger cluster.
//!
//! Cluster audit runs in two layers. First the **replica layer**: every
//! replica's log is compared against its shard's quorum log
//! ([`ClusterView`]); a replica holding *conflicting* content is tamper
//! evidence in itself — the cluster's replicas are untrusted for integrity
//! — and is flagged before any per-entry classification runs. When an
//! [`EpochSeal`] is supplied, each shard's live root is also checked
//! against the signed cross-shard super-root, catching whole-shard
//! rollback. Then the **entry layer**: the quorum logs of all shards are
//! merged and handed to the ordinary [`Auditor`], so every per-component
//! lemma of the paper applies unchanged to the clustered deployment.

use crate::auditor::{AuditReport, Auditor};
use adlp_cluster::{
    ClusterView, EpochSeal, EquivocationProof, ReplicaDivergence, ReplicaKeyring,
};
use adlp_crypto::RsaPublicKey;
use adlp_logger::{KeyRegistry, LogEntry};
use adlp_pubsub::{NodeId, Topic};
use adlp_witness::{SplitViewProof, SthKeyring};

/// Whether/how an epoch seal was checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealCheck {
    /// No seal was supplied; only replica cross-checking ran.
    NotChecked,
    /// The seal's signature and super-root verified, and every shard's
    /// live root matched its anchored root.
    Verified,
    /// The seal's own signature or super-root derivation failed.
    BadSeal,
    /// The seal verified but these shards' live state contradicted it
    /// (rollback or rewrite after sealing).
    ShardMismatch(Vec<usize>),
}

/// The cluster-level audit outcome.
#[derive(Debug, Clone)]
pub struct ClusterAuditReport {
    /// Replicas whose content conflicts with their shard's quorum log —
    /// tamper evidence naming shard and replica.
    pub divergences: Vec<ReplicaDivergence>,
    /// (shard, replica, records behind) for fail-stop laggards. Forensic
    /// context, not evidence of wrongdoing.
    pub lagging: Vec<(usize, usize, usize)>,
    /// Epoch-seal verification outcome.
    pub seal: SealCheck,
    /// Quorum-log records that failed to decode as entries.
    pub undecodable: usize,
    /// BFT mode: equivocation proofs the auditor *independently
    /// re-verified* against the replica attestation keyring — each is a
    /// self-contained conviction of (shard, replica): two valid signatures
    /// by one replica over conflicting heads at one scope. The first
    /// provably-malicious verdict in the audit, distinct from mere
    /// divergence (which is majority comparison, not proof).
    pub convictions: Vec<EquivocationProof>,
    /// Claimed equivocation proofs that did NOT verify — a forged or
    /// mangled proof, or one the auditor holds no attestation keys for.
    /// Convicts nobody, but spoils a clear report: evidence that fails
    /// verification is itself an anomaly.
    pub invalid_convictions: usize,
    /// Witness-subsystem evidence the auditor *independently re-verified*
    /// against the logger STH keyring: two valid signatures by one log over
    /// conflicting tree heads at one size — the log showed different
    /// histories to different observers (DESIGN.md §3.12). Like
    /// [`ClusterAuditReport::convictions`], each is a self-contained
    /// conviction naming the log.
    pub split_views: Vec<SplitViewProof>,
    /// Claimed split-view proofs that did NOT verify — forged, mangled, or
    /// lacking STH keys. Convicts no log, but spoils a clear report.
    pub invalid_split_views: usize,
    /// The ordinary per-component audit over the merged quorum logs.
    pub report: AuditReport,
}

impl ClusterAuditReport {
    /// Whether the cluster is clean: no diverged replica, no verified or
    /// dubious equivocation conviction, no seal trouble, every record
    /// decodable, and the entry-level audit all clear. Lagging replicas do
    /// not spoil a clear report (fail-stop is within the trust model).
    pub fn all_clear(&self) -> bool {
        self.divergences.is_empty()
            && self.convictions.is_empty()
            && self.invalid_convictions == 0
            && self.split_views.is_empty()
            && self.invalid_split_views == 0
            && matches!(self.seal, SealCheck::NotChecked | SealCheck::Verified)
            && self.undecodable == 0
            && self.report.all_clear()
    }

    /// (shard, replica) of every replica named by a verified conviction,
    /// deduplicated in first-seen order.
    pub fn convicted_replicas(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = Vec::new();
        for proof in &self.convictions {
            let id = (proof.shard(), proof.replica());
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }

    /// Identity of every log named by a verified split-view proof,
    /// deduplicated in first-seen order.
    pub fn convicted_logs(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for proof in &self.split_views {
            if !out.contains(proof.log()) {
                out.push(proof.log().clone());
            }
        }
        out
    }
}

/// An [`Auditor`] extended with cluster-level evidence gathering.
#[derive(Debug, Clone)]
pub struct ClusterAuditor {
    inner: Auditor,
    attestation_keys: Option<ReplicaKeyring>,
    sth_keys: Option<SthKeyring>,
}

impl ClusterAuditor {
    /// Creates a cluster auditor over the given key registry.
    pub fn new(keys: KeyRegistry) -> Self {
        ClusterAuditor {
            inner: Auditor::new(keys),
            attestation_keys: None,
            sth_keys: None,
        }
    }

    /// Declares the topic → publisher topology (required for hidden-entry
    /// recovery, as for the plain [`Auditor`]).
    #[must_use]
    pub fn with_topology(mut self, topology: impl IntoIterator<Item = (Topic, NodeId)>) -> Self {
        self.inner = self.inner.with_topology(topology);
        self
    }

    /// Supplies the per-replica attestation public keys (BFT mode). With
    /// these, every equivocation proof riding on a gathered view is
    /// *independently re-verified* — the auditor never takes the cluster's
    /// word that a replica equivocated, it checks both signatures itself.
    /// Without them, any claimed proof counts as unverifiable and spoils a
    /// clear report.
    #[must_use]
    pub fn with_attestation_keys(mut self, keyring: ReplicaKeyring) -> Self {
        self.attestation_keys = Some(keyring);
        self
    }

    /// Supplies the per-log STH public keys (witness mode). With these,
    /// every split-view proof handed in as evidence is *independently
    /// re-verified* — both signatures checked, conflict condition
    /// re-derived — before it convicts a log. Without them, any claimed
    /// proof counts as unverifiable and spoils a clear report.
    #[must_use]
    pub fn with_sth_keys(mut self, keyring: SthKeyring) -> Self {
        self.sth_keys = Some(keyring);
        self
    }

    /// Audits a gathered cluster view without an epoch seal.
    pub fn audit_view(&self, view: &ClusterView) -> ClusterAuditReport {
        self.run(view, SealCheck::NotChecked, &[])
    }

    /// Audits a gathered cluster view, folding in split-view evidence
    /// collected by the witness set or by light clients. Each proof is
    /// re-verified against the STH keyring supplied via
    /// [`ClusterAuditor::with_sth_keys`]; the auditor never takes a
    /// witness's word for a conviction.
    pub fn audit_view_with_evidence(
        &self,
        view: &ClusterView,
        evidence: &[SplitViewProof],
    ) -> ClusterAuditReport {
        self.run(view, SealCheck::NotChecked, evidence)
    }

    /// Audits a gathered cluster view against a sealed epoch: the seal
    /// must verify under `sealing_key` and every shard's live root must
    /// match its anchored root.
    pub fn audit_sealed_view(
        &self,
        view: &ClusterView,
        seal: &EpochSeal,
        sealing_key: &RsaPublicKey,
    ) -> ClusterAuditReport {
        let check = if !seal.verify(sealing_key) {
            SealCheck::BadSeal
        } else {
            let mismatched: Vec<usize> = view
                .shards
                .iter()
                .filter(|s| !seal.verify_shard(s.shard, &s.root, s.records.len()))
                .map(|s| s.shard)
                .collect();
            if mismatched.is_empty() {
                SealCheck::Verified
            } else {
                SealCheck::ShardMismatch(mismatched)
            }
        };
        self.run(view, check, &[])
    }

    fn run(
        &self,
        view: &ClusterView,
        seal: SealCheck,
        evidence: &[SplitViewProof],
    ) -> ClusterAuditReport {
        let mut entries: Vec<LogEntry> = Vec::with_capacity(view.total_records());
        let mut undecodable = 0usize;
        for decoded in view.entries() {
            match decoded {
                Ok(e) => entries.push(e),
                Err(_) => undecodable += 1,
            }
        }
        let mut convictions = Vec::new();
        let mut invalid_convictions = 0usize;
        for proof in &view.convictions {
            let verified = self
                .attestation_keys
                .as_ref()
                .is_some_and(|keyring| proof.verify(keyring));
            if verified {
                convictions.push(proof.clone());
            } else {
                invalid_convictions += 1;
            }
        }
        let mut split_views: Vec<SplitViewProof> = Vec::new();
        let mut invalid_split_views = 0usize;
        for proof in evidence {
            let verified = self
                .sth_keys
                .as_ref()
                .is_some_and(|keyring| proof.verify(keyring));
            if !verified {
                invalid_split_views += 1;
            } else if !split_views
                .iter()
                .any(|p| p.log() == proof.log() && p.size() == proof.size())
            {
                split_views.push(proof.clone());
            }
        }
        ClusterAuditReport {
            divergences: view.divergences(),
            lagging: view.lagging(),
            seal,
            undecodable,
            convictions,
            invalid_convictions,
            split_views,
            invalid_split_views,
            report: self.inner.audit(&entries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_cluster::{ClusterConfig, LoggerCluster};
    use adlp_crypto::RsaKeyPair;
    use adlp_logger::{Direction, LogEntry};
    use rand::SeedableRng;

    fn entry(seq: u64, body: Vec<u8>) -> LogEntry {
        LogEntry::naive(
            NodeId::new("cam"),
            Topic::new("image"),
            Direction::Out,
            seq,
            seq,
            body,
        )
    }

    fn fill(cluster: &LoggerCluster) {
        for shard in 0..cluster.shard_count() {
            for slot in cluster.shard_replicas(shard) {
                for seq in 0..4 {
                    slot.handle().try_submit(entry(seq, vec![5u8; 16])).unwrap();
                }
                slot.handle().flush().unwrap();
            }
        }
    }

    #[test]
    fn clean_cluster_audits_clear_with_verified_seal() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(2)).unwrap();
        fill(&cluster);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let seal = cluster.seal_epoch(kp.private_key()).unwrap();
        let view = cluster.view();
        let auditor = ClusterAuditor::new(cluster.keys().clone())
            .with_topology([(Topic::new("image"), NodeId::new("cam"))]);
        let report = auditor.audit_sealed_view(&view, &seal, kp.public_key());
        assert_eq!(report.seal, SealCheck::Verified);
        assert!(report.divergences.is_empty());
        assert!(report.all_clear(), "clean cluster must audit clear");
    }

    #[test]
    fn diverged_replica_is_flagged_with_identity() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        fill(&cluster);
        cluster
            .replica(0, 1)
            .unwrap()
            .handle()
            .store()
            .tamper_with_record(2, entry(2, vec![9u8; 16]).encode())
            .unwrap();
        let auditor = ClusterAuditor::new(cluster.keys().clone())
            .with_topology([(Topic::new("image"), NodeId::new("cam"))]);
        let report = auditor.audit_view(&cluster.view());
        assert!(!report.all_clear());
        assert_eq!(
            report.divergences,
            vec![ReplicaDivergence {
                shard: 0,
                replica: 1,
                first_divergent_index: 2
            }]
        );
    }

    #[test]
    fn shard_rollback_after_sealing_is_caught() {
        let cluster = LoggerCluster::spawn(ClusterConfig::new(2)).unwrap();
        fill(&cluster);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let seal = cluster.seal_epoch(kp.private_key()).unwrap();

        // All replicas of shard 1 keep writing after the seal: the live
        // root no longer matches the anchored one.
        for slot in cluster.shard_replicas(1) {
            slot.handle().try_submit(entry(99, vec![1u8; 8])).unwrap();
            slot.handle().flush().unwrap();
        }
        let auditor = ClusterAuditor::new(cluster.keys().clone());
        let report = auditor.audit_sealed_view(&cluster.view(), &seal, kp.public_key());
        assert_eq!(report.seal, SealCheck::ShardMismatch(vec![1]));
        assert!(!report.all_clear());
    }

    #[test]
    fn equivocating_replica_is_convicted_with_verified_proof() {
        use adlp_cluster::AttestationScope;

        let cluster = LoggerCluster::spawn(ClusterConfig::byzantine(1, 1)).unwrap();
        fill(&cluster);
        let ledger = cluster.attestations().unwrap();

        // Replica (0, 2) signs two conflicting heads at the same scope —
        // the equivocation the BFT deposit path would catch live; here the
        // ledger observes both statements directly.
        let attestor = cluster.replica(0, 2).unwrap().attestor().unwrap().clone();
        let honest = cluster.replica(0, 2).unwrap().attest_head().unwrap().unwrap();
        let lie = attestor
            .attest(honest.scope, adlp_crypto::sha256(b"forged history"))
            .unwrap();
        ledger.observe(honest);
        assert!(matches!(
            ledger.observe(lie),
            adlp_cluster::Observation::Equivocation(_)
        ));

        let view = cluster.view();
        assert_eq!(view.equivocated(), vec![(0, 2)]);

        // The auditor re-verifies the proof itself and names the replica.
        let auditor = ClusterAuditor::new(cluster.keys().clone())
            .with_topology([(Topic::new("image"), NodeId::new("cam"))])
            .with_attestation_keys(ledger.keyring().clone());
        let report = auditor.audit_view(&view);
        assert!(!report.all_clear());
        assert_eq!(report.convicted_replicas(), vec![(0, 2)]);
        assert_eq!(report.invalid_convictions, 0);
        assert_eq!(report.convictions.len(), 1);
        assert_eq!(report.convictions[0].scope(), AttestationScope::Head { length: 4 });
        // The equivocating replica's *store* still matches its peers, so
        // comparison-based divergence is silent — only the signed proof
        // catches the lie. That is the point.
        assert!(report.divergences.is_empty());

        // Without attestation keys the claimed proof is unverifiable, and
        // unverifiable evidence spoils a clear report rather than passing.
        let blind = ClusterAuditor::new(cluster.keys().clone())
            .with_topology([(Topic::new("image"), NodeId::new("cam"))]);
        let blind_report = blind.audit_view(&view);
        assert!(blind_report.convictions.is_empty());
        assert_eq!(blind_report.invalid_convictions, 1);
        assert!(!blind_report.all_clear());
    }

    #[test]
    fn forged_conviction_convicts_nobody_but_spoils_clear() {
        let cluster = LoggerCluster::spawn(ClusterConfig::byzantine(1, 1)).unwrap();
        fill(&cluster);
        let ledger = cluster.attestations().unwrap();

        // A "proof" pairing two *different* replicas' genuine attestations
        // is not an equivocation by anyone.
        let a = cluster.replica(0, 0).unwrap().attest_head().unwrap().unwrap();
        let b = cluster.replica(0, 1).unwrap().attest_head().unwrap().unwrap();
        let mut view = cluster.view();
        view.convictions.push(adlp_cluster::EquivocationProof { first: a, second: b });

        let auditor = ClusterAuditor::new(cluster.keys().clone())
            .with_topology([(Topic::new("image"), NodeId::new("cam"))])
            .with_attestation_keys(ledger.keyring().clone());
        let report = auditor.audit_view(&view);
        assert!(report.convictions.is_empty(), "forgery convicts nobody");
        assert_eq!(report.invalid_convictions, 1);
        assert!(!report.all_clear(), "but forged evidence is an anomaly");
    }

    #[test]
    fn witness_split_view_evidence_convicts_the_log() {
        use adlp_logger::sth::TreeHeadSigner;

        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        fill(&cluster);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let kp = RsaKeyPair::generate(512, &mut rng);
        let sth_keys = adlp_witness::SthKeyring::new()
            .with_log(NodeId::new("logger"), kp.public_key().clone());

        // The logger's own key signed two conflicting heads at one size —
        // the evidence a witness or light client hands the auditor.
        let signer = TreeHeadSigner::new(
            NodeId::new("logger"),
            adlp_crypto::rsa::RsaPrivateKey::from_bytes(&kp.private_key().to_bytes()).unwrap(),
        );
        let proof = SplitViewProof {
            first: signer.sign(1, 4, adlp_crypto::sha256(b"honest")).unwrap(),
            second: signer.sign(2, 4, adlp_crypto::sha256(b"forked")).unwrap(),
        };

        let auditor = ClusterAuditor::new(cluster.keys().clone())
            .with_topology([(Topic::new("image"), NodeId::new("cam"))])
            .with_sth_keys(sth_keys);
        // Duplicate evidence for one (log, size) is folded into one
        // conviction.
        let report =
            auditor.audit_view_with_evidence(&cluster.view(), &[proof.clone(), proof.clone()]);
        assert!(!report.all_clear());
        assert_eq!(report.split_views.len(), 1);
        assert_eq!(report.invalid_split_views, 0);
        assert_eq!(report.convicted_logs(), vec![NodeId::new("logger")]);

        // A forged proof (one half re-signed by a different key) convicts
        // nobody but spoils a clear report.
        let imposter = RsaKeyPair::generate(512, &mut rng);
        let forger = TreeHeadSigner::new(
            NodeId::new("logger"),
            adlp_crypto::rsa::RsaPrivateKey::from_bytes(&imposter.private_key().to_bytes())
                .unwrap(),
        );
        let forged = SplitViewProof {
            first: proof.first.clone(),
            second: forger.sign(2, 4, adlp_crypto::sha256(b"forked")).unwrap(),
        };
        let report =
            auditor.audit_view_with_evidence(&cluster.view(), std::slice::from_ref(&forged));
        assert!(report.split_views.is_empty(), "forgery convicts no log");
        assert_eq!(report.invalid_split_views, 1);
        assert!(!report.all_clear(), "but forged evidence is an anomaly");

        // Without STH keys even genuine evidence is unverifiable.
        let blind = ClusterAuditor::new(cluster.keys().clone())
            .with_topology([(Topic::new("image"), NodeId::new("cam"))]);
        let blind_report = blind.audit_view_with_evidence(&cluster.view(), &[proof]);
        assert!(blind_report.split_views.is_empty());
        assert_eq!(blind_report.invalid_split_views, 1);
        assert!(!blind_report.all_clear());

        // No evidence: the clean cluster still audits clear.
        assert!(auditor.audit_view(&cluster.view()).all_clear());
    }

    #[test]
    fn lagging_replica_does_not_spoil_clear() {
        let cluster = LoggerCluster::spawn(ClusterConfig::replicated(1)).unwrap();
        fill(&cluster);
        // One replica restarts empty: lagging, not diverged.
        cluster.kill_replica(0, 2);
        cluster.restart_replica(0, 2).unwrap();
        let auditor = ClusterAuditor::new(cluster.keys().clone())
            .with_topology([(Topic::new("image"), NodeId::new("cam"))]);
        let report = auditor.audit_view(&cluster.view());
        assert!(report.divergences.is_empty());
        assert_eq!(report.lagging, vec![(0, 2, 4)]);
        assert!(report.all_clear(), "fail-stop lag is within the trust model");
    }
}
