//! Classification vocabulary (the paper's Figure 5).

use adlp_logger::Direction;
use adlp_pubsub::{NodeId, Topic};
use std::fmt;

/// The auditor's verdict on one observed log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryClass {
    /// The entry is consistent with all available evidence (L̂_V).
    Valid,
    /// The entry is provably wrong (L̂_I).
    Invalid(InvalidReason),
    /// A publisher entry with no usable acknowledgement and no counterpart
    /// corroboration: by Lemma 1 it *cannot prove* the publication. It is
    /// not provably false either — a faithful publisher facing a
    /// non-acknowledging subscriber produces exactly this.
    Unproven,
    /// The entry is *absent*, but its absence is covered by a verified gap
    /// receipt — a signed admission that the owning component's overloaded
    /// deposit pipeline shed the range `[first_seq, last_seq]`. Bounded,
    /// accounted loss: not hiding.
    Shed {
        /// First sequence number of the covering receipt's range.
        first_seq: u64,
        /// Last sequence number of the covering receipt's range.
        last_seq: u64,
    },
}

impl EntryClass {
    /// Whether the class is [`EntryClass::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, EntryClass::Valid)
    }
}

/// Why an entry was classified invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvalidReason {
    /// The entry's own signature does not verify under the claimed
    /// component's registered key — tampering or impersonation ("no
    /// component can write a log entry as if it was created by someone
    /// else", §IV-B).
    AuthenticityFailure,
    /// The claimed component has no registered key.
    UnknownComponent,
    /// An `out` entry for a topic owned by a different component (the
    /// unique-publisher rule of §II).
    WrongPublisher,
    /// The logged data contradicts the counterpart's cryptographically
    /// provable record (Lemma 3 — falsification).
    FalsifiedPayload,
    /// The recorded counterpart signature is invalid: since exchanged
    /// signatures are transport-enforced valid (requirement (4)), the
    /// component must have made the record up (Lemma 1 — fabrication).
    FabricatedPeerSignature,
    /// A second entry for the same (topic, seq, link) — replay.
    DuplicateSeq,
    /// Entries conflict in a way no single-component explanation covers;
    /// collusion suspected.
    UnresolvableConflict,
    /// An entry carries the gap-receipt magic but is malformed, overlaps
    /// another receipt from the same component, or claims a range in which
    /// that component demonstrably *did* deposit entries.
    InvalidGapReceipt,
}

impl fmt::Display for InvalidReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvalidReason::AuthenticityFailure => "own signature fails authenticity check",
            InvalidReason::UnknownComponent => "component has no registered key",
            InvalidReason::WrongPublisher => "entry for a topic owned by another publisher",
            InvalidReason::FalsifiedPayload => "payload contradicts counterpart's provable record",
            InvalidReason::FabricatedPeerSignature => "recorded counterpart signature is invalid",
            InvalidReason::DuplicateSeq => "duplicate sequence number (replay)",
            InvalidReason::UnresolvableConflict => "unresolvable conflict (collusion suspected)",
            InvalidReason::InvalidGapReceipt => {
                "gap receipt is malformed, overlapping, or contradicts deposited entries"
            }
        };
        f.write_str(s)
    }
}

/// A log entry that *should* exist but was never entered (an element of
/// L̂_H), recovered from counterpart evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HiddenRecord {
    /// The component that hid its entry.
    pub component: NodeId,
    /// Which side of the transmission it hid.
    pub direction: Direction,
    /// The topic.
    pub topic: Topic,
    /// The sequence number.
    pub seq: u64,
    /// The counterpart whose entry proves the transmission.
    pub proven_by: NodeId,
}

/// The audit result for one link instance (topic, seq, subscriber).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkAudit {
    /// The topic.
    pub topic: Topic,
    /// The sequence number.
    pub seq: u64,
    /// The publisher (from topology).
    pub publisher: NodeId,
    /// The subscriber on this link.
    pub subscriber: NodeId,
    /// Verdict on the publisher's entry (`None` when absent).
    pub publisher_entry: Option<EntryClass>,
    /// Verdict on the subscriber's entry (`None` when absent).
    pub subscriber_entry: Option<EntryClass>,
    /// Hidden entries recovered on this link.
    pub hidden: Vec<HiddenRecord>,
}

/// Observations that are suspicious but not attributable to a single
/// component.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Anomaly {
    /// Both sides of a link carry internally valid but mutually
    /// contradictory evidence — only collusion (or key compromise) explains
    /// it.
    ConflictingEvidence {
        /// The topic.
        topic: Topic,
        /// The sequence number.
        seq: u64,
        /// The two components involved.
        parties: (NodeId, NodeId),
    },
    /// An entry claims authorship by a component whose key rejects it:
    /// someone may be impersonating `claimed`.
    ImpersonationSuspected {
        /// The component named in the forged entry (the victim).
        claimed: NodeId,
        /// The topic of the forged entry.
        topic: Topic,
        /// The sequence number of the forged entry.
        seq: u64,
    },
    /// Sequence numbers on a link have gaps: transmissions may have been
    /// hidden by *both* parties (a colluding pair is unobservable, §III-B).
    SequenceGap {
        /// The topic.
        topic: Topic,
        /// The subscriber of the gapped link.
        subscriber: NodeId,
        /// Missing sequence numbers (bounded sample).
        missing: Vec<u64>,
    },
    /// A publisher entry records an acknowledgement hash that matches
    /// neither its own claimed payload nor the subscriber's record.
    InconsistentAck {
        /// The topic.
        topic: Topic,
        /// The sequence number.
        seq: u64,
        /// The publisher.
        publisher: NodeId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_class_helpers() {
        assert!(EntryClass::Valid.is_valid());
        assert!(!EntryClass::Invalid(InvalidReason::FalsifiedPayload).is_valid());
        assert!(!EntryClass::Unproven.is_valid());
    }

    #[test]
    fn invalid_reason_display_is_informative() {
        for r in [
            InvalidReason::AuthenticityFailure,
            InvalidReason::UnknownComponent,
            InvalidReason::WrongPublisher,
            InvalidReason::FalsifiedPayload,
            InvalidReason::FabricatedPeerSignature,
            InvalidReason::DuplicateSeq,
            InvalidReason::UnresolvableConflict,
            InvalidReason::InvalidGapReceipt,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
