//! Human-readable rendering of audit results — what a third-party
//! investigator (the paper's NTSB motivating example) would actually read.

use crate::auditor::{AuditReport, ViolationKind};
use crate::classify::{Anomaly, EntryClass};
use crate::cluster::{ClusterAuditReport, SealCheck};
use std::fmt;

/// Wrapper that renders an [`AuditReport`] as a forensic summary.
///
/// ```
/// use adlp_audit::{AuditReport, render::Rendered};
/// let report = AuditReport::default();
/// let text = Rendered(&report).to_string();
/// assert!(text.contains("AUDIT SUMMARY"));
/// ```
pub struct Rendered<'a>(pub &'a AuditReport);

impl fmt::Display for Rendered<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.0;
        writeln!(f, "=== AUDIT SUMMARY ===")?;
        writeln!(
            f,
            "links audited: {}   hidden records recovered: {}   rejected entries: {}",
            r.links.len(),
            r.hidden.len(),
            r.rejected_entries.len()
        )?;

        writeln!(f, "\n-- component verdicts --")?;
        if r.verdicts.is_empty() {
            writeln!(f, "  (no components produced auditable entries)")?;
        }
        for (component, verdict) in &r.verdicts {
            if verdict.is_faithful() {
                writeln!(
                    f,
                    "  {component:<20} FAITHFUL    ({} valid entries)",
                    verdict.valid_entries
                )?;
            } else {
                writeln!(
                    f,
                    "  {component:<20} UNFAITHFUL  ({} valid, {} violations)",
                    verdict.valid_entries,
                    verdict.violations.len()
                )?;
                for v in &verdict.violations {
                    writeln!(
                        f,
                        "      {} on {}#{}",
                        violation_label(v.kind),
                        v.topic,
                        v.seq
                    )?;
                }
            }
        }

        if !r.hidden.is_empty() {
            writeln!(f, "\n-- hidden records (recovered from counterpart evidence) --")?;
            for h in &r.hidden {
                writeln!(
                    f,
                    "  {} hid its '{}' record for {}#{} (proven by {})",
                    h.component, h.direction, h.topic, h.seq, h.proven_by
                )?;
            }
        }

        if !r.shed.is_empty() {
            writeln!(f, "\n-- shed ranges (signed gap receipts) --")?;
            for s in &r.shed {
                writeln!(
                    f,
                    "  {} shed its '{}' records {}#{}..={} ({} entries, {})",
                    s.component, s.direction, s.topic, s.first_seq, s.last_seq, s.count, s.reason
                )?;
            }
        }

        if !r.rejected_entries.is_empty() {
            writeln!(f, "\n-- rejected entries --")?;
            for (e, reason) in &r.rejected_entries {
                writeln!(
                    f,
                    "  {} {} {}#{}: {}",
                    e.component, e.direction, e.topic, e.seq, reason
                )?;
            }
        }

        if !r.anomalies.is_empty() {
            writeln!(f, "\n-- anomalies (not attributable to one component) --")?;
            for a in &r.anomalies {
                writeln!(f, "  {}", anomaly_label(a))?;
            }
        }

        let unproven = r
            .links
            .iter()
            .filter(|l| {
                l.publisher_entry == Some(EntryClass::Unproven)
                    || l.subscriber_entry == Some(EntryClass::Unproven)
            })
            .count();
        if unproven > 0 {
            writeln!(f, "\n{unproven} link(s) carry unproven records (no counterpart evidence).")?;
        }
        Ok(())
    }
}

/// Wrapper that renders a [`ClusterAuditReport`] — the replica-layer
/// verdicts (divergence, equivocation convictions, seal state) followed by
/// the ordinary entry-layer summary.
pub struct RenderedCluster<'a>(pub &'a ClusterAuditReport);

impl fmt::Display for RenderedCluster<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.0;
        writeln!(f, "=== CLUSTER AUDIT ===")?;
        writeln!(
            f,
            "verdict: {}",
            if r.all_clear() { "ALL CLEAR" } else { "EVIDENCE FOUND" }
        )?;

        let seal = match &r.seal {
            SealCheck::NotChecked => "not checked (no seal supplied)".to_string(),
            SealCheck::Verified => "verified (super-root matches every shard)".to_string(),
            SealCheck::BadSeal => "BAD SEAL (signature or super-root derivation failed)".to_string(),
            SealCheck::ShardMismatch(shards) => {
                format!("SHARD MISMATCH (rollback/rewrite after sealing): shards {shards:?}")
            }
        };
        writeln!(f, "epoch seal: {seal}")?;

        if !r.convictions.is_empty() {
            writeln!(f, "\n-- equivocation convictions (signatures re-verified) --")?;
            for proof in &r.convictions {
                writeln!(
                    f,
                    "  shard {} replica {} signed conflicting heads at {} — provably malicious",
                    proof.shard(),
                    proof.replica(),
                    proof.scope()
                )?;
            }
        }
        if r.invalid_convictions > 0 {
            writeln!(
                f,
                "\n{} claimed equivocation proof(s) FAILED verification — forged evidence or missing attestation keys; convicts nobody, but is itself an anomaly.",
                r.invalid_convictions
            )?;
        }

        if !r.split_views.is_empty() {
            writeln!(f, "\n-- split-view convictions (STH signatures re-verified) --")?;
            for proof in &r.split_views {
                writeln!(
                    f,
                    "  log {} signed conflicting tree heads at size {} — showed different histories to different observers",
                    proof.log(),
                    proof.size()
                )?;
            }
        }
        if r.invalid_split_views > 0 {
            writeln!(
                f,
                "\n{} claimed split-view proof(s) FAILED verification — forged evidence or missing STH keys; convicts no log, but is itself an anomaly.",
                r.invalid_split_views
            )?;
        }

        if !r.divergences.is_empty() {
            writeln!(f, "\n-- diverged replicas (conflict with quorum log) --")?;
            for d in &r.divergences {
                writeln!(
                    f,
                    "  shard {} replica {} diverges from record {} onward",
                    d.shard, d.replica, d.first_divergent_index
                )?;
            }
        }

        if !r.lagging.is_empty() {
            writeln!(f, "\n-- lagging replicas (fail-stop; not wrongdoing) --")?;
            for (shard, replica, behind) in &r.lagging {
                writeln!(f, "  shard {shard} replica {replica} is {behind} record(s) behind")?;
            }
        }

        if r.undecodable > 0 {
            writeln!(f, "\n{} quorum-log record(s) failed to decode.", r.undecodable)?;
        }

        writeln!(f, "\n-- entry layer (merged quorum logs) --")?;
        write!(f, "{}", Rendered(&r.report))
    }
}

fn violation_label(kind: ViolationKind) -> &'static str {
    match kind {
        ViolationKind::HidPublication => "hid a publication record",
        ViolationKind::HidReceipt => "hid a receipt record",
        ViolationKind::FalsifiedLog => "falsified logged data",
        ViolationKind::FabricatedLog => "fabricated a log entry",
        ViolationKind::ReplayedLog => "replayed a log entry",
    }
}

fn anomaly_label(a: &Anomaly) -> String {
    match a {
        Anomaly::ConflictingEvidence { topic, seq, parties } => format!(
            "conflicting evidence on {topic}#{seq} between {} and {} (collusion suspected)",
            parties.0, parties.1
        ),
        Anomaly::ImpersonationSuspected { claimed, topic, seq } => {
            format!("entry claiming authorship by {claimed} on {topic}#{seq} fails authenticity — impersonation suspected")
        }
        Anomaly::SequenceGap {
            topic,
            subscriber,
            missing,
        } => format!(
            "sequence gap on {topic}→{subscriber}: missing {missing:?} (pairwise hiding cannot be ruled out)"
        ),
        Anomaly::InconsistentAck { topic, seq, publisher } => {
            format!("{publisher}'s entry for {topic}#{seq} records an acknowledgement over unexpected data")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{ComponentVerdict, Violation};
    use adlp_logger::Direction;
    use adlp_pubsub::{NodeId, Topic};

    #[test]
    fn empty_report_renders() {
        let r = AuditReport::default();
        let s = Rendered(&r).to_string();
        assert!(s.contains("AUDIT SUMMARY"));
        assert!(s.contains("no components"));
    }

    #[test]
    fn violations_and_hidden_render() {
        let mut r = AuditReport::default();
        r.verdicts.insert(
            NodeId::new("det"),
            ComponentVerdict {
                valid_entries: 2,
                violations: vec![Violation {
                    topic: Topic::new("image"),
                    seq: 3,
                    kind: ViolationKind::FalsifiedLog,
                }],
            },
        );
        r.hidden.push(crate::classify::HiddenRecord {
            component: NodeId::new("det"),
            direction: Direction::In,
            topic: Topic::new("image"),
            seq: 4,
            proven_by: NodeId::new("cam"),
        });
        let s = Rendered(&r).to_string();
        assert!(s.contains("UNFAITHFUL"));
        assert!(s.contains("falsified logged data"));
        assert!(s.contains("hid its 'in' record"));
    }

    #[test]
    fn cluster_report_renders_convictions_and_divergence() {
        let r = ClusterAuditReport {
            divergences: vec![adlp_cluster::ReplicaDivergence {
                shard: 0,
                replica: 1,
                first_divergent_index: 2,
            }],
            lagging: vec![(1, 0, 3)],
            seal: SealCheck::ShardMismatch(vec![1]),
            undecodable: 0,
            convictions: Vec::new(),
            invalid_convictions: 1,
            split_views: Vec::new(),
            invalid_split_views: 1,
            report: AuditReport::default(),
        };
        let s = RenderedCluster(&r).to_string();
        assert!(s.contains("EVIDENCE FOUND"));
        assert!(s.contains("SHARD MISMATCH"));
        assert!(s.contains("shard 0 replica 1 diverges from record 2"));
        assert!(s.contains("shard 1 replica 0 is 3 record(s) behind"));
        assert!(s.contains("FAILED verification"));
        assert!(s.contains("split-view proof(s) FAILED verification"));
        assert!(s.contains("AUDIT SUMMARY"));
    }

    #[test]
    fn anomalies_render() {
        let mut r = AuditReport::default();
        r.anomalies.push(Anomaly::ConflictingEvidence {
            topic: Topic::new("plan"),
            seq: 1,
            parties: (NodeId::new("a"), NodeId::new("b")),
        });
        r.anomalies.push(Anomaly::SequenceGap {
            topic: Topic::new("plan"),
            subscriber: NodeId::new("b"),
            missing: vec![2, 3],
        });
        let s = Rendered(&r).to_string();
        assert!(s.contains("collusion suspected"));
        assert!(s.contains("sequence gap"));
    }
}
