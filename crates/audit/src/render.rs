//! Human-readable rendering of audit results — what a third-party
//! investigator (the paper's NTSB motivating example) would actually read.

use crate::auditor::{AuditReport, ViolationKind};
use crate::classify::{Anomaly, EntryClass};
use std::fmt;

/// Wrapper that renders an [`AuditReport`] as a forensic summary.
///
/// ```
/// use adlp_audit::{AuditReport, render::Rendered};
/// let report = AuditReport::default();
/// let text = Rendered(&report).to_string();
/// assert!(text.contains("AUDIT SUMMARY"));
/// ```
pub struct Rendered<'a>(pub &'a AuditReport);

impl fmt::Display for Rendered<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.0;
        writeln!(f, "=== AUDIT SUMMARY ===")?;
        writeln!(
            f,
            "links audited: {}   hidden records recovered: {}   rejected entries: {}",
            r.links.len(),
            r.hidden.len(),
            r.rejected_entries.len()
        )?;

        writeln!(f, "\n-- component verdicts --")?;
        if r.verdicts.is_empty() {
            writeln!(f, "  (no components produced auditable entries)")?;
        }
        for (component, verdict) in &r.verdicts {
            if verdict.is_faithful() {
                writeln!(
                    f,
                    "  {component:<20} FAITHFUL    ({} valid entries)",
                    verdict.valid_entries
                )?;
            } else {
                writeln!(
                    f,
                    "  {component:<20} UNFAITHFUL  ({} valid, {} violations)",
                    verdict.valid_entries,
                    verdict.violations.len()
                )?;
                for v in &verdict.violations {
                    writeln!(
                        f,
                        "      {} on {}#{}",
                        violation_label(v.kind),
                        v.topic,
                        v.seq
                    )?;
                }
            }
        }

        if !r.hidden.is_empty() {
            writeln!(f, "\n-- hidden records (recovered from counterpart evidence) --")?;
            for h in &r.hidden {
                writeln!(
                    f,
                    "  {} hid its '{}' record for {}#{} (proven by {})",
                    h.component, h.direction, h.topic, h.seq, h.proven_by
                )?;
            }
        }

        if !r.shed.is_empty() {
            writeln!(f, "\n-- shed ranges (signed gap receipts) --")?;
            for s in &r.shed {
                writeln!(
                    f,
                    "  {} shed its '{}' records {}#{}..={} ({} entries, {})",
                    s.component, s.direction, s.topic, s.first_seq, s.last_seq, s.count, s.reason
                )?;
            }
        }

        if !r.rejected_entries.is_empty() {
            writeln!(f, "\n-- rejected entries --")?;
            for (e, reason) in &r.rejected_entries {
                writeln!(
                    f,
                    "  {} {} {}#{}: {}",
                    e.component, e.direction, e.topic, e.seq, reason
                )?;
            }
        }

        if !r.anomalies.is_empty() {
            writeln!(f, "\n-- anomalies (not attributable to one component) --")?;
            for a in &r.anomalies {
                writeln!(f, "  {}", anomaly_label(a))?;
            }
        }

        let unproven = r
            .links
            .iter()
            .filter(|l| {
                l.publisher_entry == Some(EntryClass::Unproven)
                    || l.subscriber_entry == Some(EntryClass::Unproven)
            })
            .count();
        if unproven > 0 {
            writeln!(f, "\n{unproven} link(s) carry unproven records (no counterpart evidence).")?;
        }
        Ok(())
    }
}

fn violation_label(kind: ViolationKind) -> &'static str {
    match kind {
        ViolationKind::HidPublication => "hid a publication record",
        ViolationKind::HidReceipt => "hid a receipt record",
        ViolationKind::FalsifiedLog => "falsified logged data",
        ViolationKind::FabricatedLog => "fabricated a log entry",
        ViolationKind::ReplayedLog => "replayed a log entry",
    }
}

fn anomaly_label(a: &Anomaly) -> String {
    match a {
        Anomaly::ConflictingEvidence { topic, seq, parties } => format!(
            "conflicting evidence on {topic}#{seq} between {} and {} (collusion suspected)",
            parties.0, parties.1
        ),
        Anomaly::ImpersonationSuspected { claimed, topic, seq } => {
            format!("entry claiming authorship by {claimed} on {topic}#{seq} fails authenticity — impersonation suspected")
        }
        Anomaly::SequenceGap {
            topic,
            subscriber,
            missing,
        } => format!(
            "sequence gap on {topic}→{subscriber}: missing {missing:?} (pairwise hiding cannot be ruled out)"
        ),
        Anomaly::InconsistentAck { topic, seq, publisher } => {
            format!("{publisher}'s entry for {topic}#{seq} records an acknowledgement over unexpected data")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{ComponentVerdict, Violation};
    use adlp_logger::Direction;
    use adlp_pubsub::{NodeId, Topic};

    #[test]
    fn empty_report_renders() {
        let r = AuditReport::default();
        let s = Rendered(&r).to_string();
        assert!(s.contains("AUDIT SUMMARY"));
        assert!(s.contains("no components"));
    }

    #[test]
    fn violations_and_hidden_render() {
        let mut r = AuditReport::default();
        r.verdicts.insert(
            NodeId::new("det"),
            ComponentVerdict {
                valid_entries: 2,
                violations: vec![Violation {
                    topic: Topic::new("image"),
                    seq: 3,
                    kind: ViolationKind::FalsifiedLog,
                }],
            },
        );
        r.hidden.push(crate::classify::HiddenRecord {
            component: NodeId::new("det"),
            direction: Direction::In,
            topic: Topic::new("image"),
            seq: 4,
            proven_by: NodeId::new("cam"),
        });
        let s = Rendered(&r).to_string();
        assert!(s.contains("UNFAITHFUL"));
        assert!(s.contains("falsified logged data"));
        assert!(s.contains("hid its 'in' record"));
    }

    #[test]
    fn anomalies_render() {
        let mut r = AuditReport::default();
        r.anomalies.push(Anomaly::ConflictingEvidence {
            topic: Topic::new("plan"),
            seq: 1,
            parties: (NodeId::new("a"), NodeId::new("b")),
        });
        r.anomalies.push(Anomaly::SequenceGap {
            topic: Topic::new("plan"),
            subscriber: NodeId::new("b"),
            missing: vec![2, 3],
        });
        let s = Rendered(&r).to_string();
        assert!(s.contains("collusion suspected"));
        assert!(s.contains("sequence gap"));
    }
}
