//! Temporal-causality checking (paper §IV-B2, Lemma 4).
//!
//! For a declared data flow `D_{x→y}` then `D_{y→z}`, the timestamps in the
//! four log entries must satisfy
//! `t_{x,out} ≤ t_{y,in} ≤ t_{y,out} ≤ t_{z,in}`. A single unfaithful
//! component cannot break the *precedence* between the two transmissions
//! without producing a locally visible inversion; only a full-chain
//! collusion can (Lemma 4). The checker reports every violated constraint
//! together with the components that could explain it.

use adlp_logger::{Direction, LogEntry};
use adlp_pubsub::{NodeId, Topic};
use std::collections::HashMap;

/// One hop of a declared flow: data of `topic` carried from its publisher
/// to `subscriber`, at sequence `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStep {
    /// The topic of this hop.
    pub topic: Topic,
    /// The sequence number of the transmission.
    pub seq: u64,
    /// The consuming component.
    pub subscriber: NodeId,
}

/// A violated timestamp constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalityViolation {
    /// Human-readable constraint, e.g. `t(cam out image#3) ≤ t(det in image#3)`.
    pub constraint: String,
    /// The earlier event's claimed timestamp.
    pub earlier_ns: u64,
    /// The later event's claimed timestamp.
    pub later_ns: u64,
    /// Components whose dishonest timestamps could explain the inversion.
    pub suspects: Vec<NodeId>,
}

/// Timestamp-ordering checker over a set of (already classified) entries.
#[derive(Debug, Default)]
pub struct CausalityChecker {
    /// (topic, seq, component, direction) → claimed timestamp.
    stamps: HashMap<(Topic, u64, NodeId, DirKey), u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DirKey {
    Out,
    In,
}

impl From<Direction> for DirKey {
    fn from(d: Direction) -> Self {
        match d {
            Direction::Out => DirKey::Out,
            Direction::In => DirKey::In,
        }
    }
}

impl CausalityChecker {
    /// Builds the checker from log entries (use the valid subset from an
    /// audit to avoid reasoning over rejected records).
    pub fn from_entries<'a>(entries: impl IntoIterator<Item = &'a LogEntry>) -> Self {
        let mut stamps = HashMap::new();
        for e in entries {
            stamps.insert(
                (
                    e.topic.clone(),
                    e.seq,
                    e.component.clone(),
                    DirKey::from(e.direction),
                ),
                e.timestamp_ns,
            );
        }
        CausalityChecker { stamps }
    }

    fn stamp(&self, topic: &Topic, seq: u64, who: &NodeId, dir: DirKey) -> Option<u64> {
        self.stamps
            .get(&(topic.clone(), seq, who.clone(), dir))
            .copied()
    }

    /// Checks the per-hop constraint `t_out ≤ t_in` for one transmission.
    pub fn check_hop(
        &self,
        topic: &Topic,
        seq: u64,
        publisher: &NodeId,
        subscriber: &NodeId,
    ) -> Option<CausalityViolation> {
        let t_out = self.stamp(topic, seq, publisher, DirKey::Out)?;
        let t_in = self.stamp(topic, seq, subscriber, DirKey::In)?;
        (t_out > t_in).then(|| CausalityViolation {
            constraint: format!("t({publisher} out {topic}#{seq}) ≤ t({subscriber} in {topic}#{seq})"),
            earlier_ns: t_out,
            later_ns: t_in,
            suspects: vec![publisher.clone(), subscriber.clone()],
        })
    }

    /// Checks the intra-component constraint `t_in ≤ t_out` for a component
    /// that consumed hop `k` and produced hop `k+1`.
    pub fn check_processing(
        &self,
        in_topic: &Topic,
        in_seq: u64,
        component: &NodeId,
        out_topic: &Topic,
        out_seq: u64,
    ) -> Option<CausalityViolation> {
        let t_in = self.stamp(in_topic, in_seq, component, DirKey::In)?;
        let t_out = self.stamp(out_topic, out_seq, component, DirKey::Out)?;
        (t_in > t_out).then(|| CausalityViolation {
            constraint: format!(
                "t({component} in {in_topic}#{in_seq}) ≤ t({component} out {out_topic}#{out_seq})"
            ),
            earlier_ns: t_in,
            later_ns: t_out,
            suspects: vec![component.clone()],
        })
    }

    /// Checks a whole declared chain: publishers are supplied per hop (from
    /// the topology); returns every violated constraint.
    ///
    /// `chain` is the sequence of hops the flow took, e.g. for
    /// Figure 10's `D_{x→y}` then `D_{y→z}`:
    /// `[(image hop to y), (feature hop to z)]` with publishers `[x, y]`.
    pub fn check_chain(
        &self,
        hops: &[(FlowStep, NodeId)],
    ) -> Vec<CausalityViolation> {
        let mut violations = Vec::new();
        for (step, publisher) in hops {
            if let Some(v) = self.check_hop(&step.topic, step.seq, publisher, &step.subscriber) {
                violations.push(v);
            }
        }
        for window in hops.windows(2) {
            let (in_step, _) = &window[0];
            let (out_step, out_publisher) = &window[1];
            // The middle component: subscriber of hop k and publisher of
            // hop k+1 (must match for a well-formed chain).
            if &in_step.subscriber != out_publisher {
                continue;
            }
            if let Some(v) = self.check_processing(
                &in_step.topic,
                in_step.seq,
                out_publisher,
                &out_step.topic,
                out_step.seq,
            ) {
                violations.push(v);
            }
        }
        violations
    }
}

/// Timestamps of a component's entries for one topic/direction, ordered by
/// sequence number.
type SeqStamps = Vec<(u64, u64)>;

impl CausalityChecker {
    fn stamps_for(&self, topic: &Topic, who: &NodeId, dir: DirKey) -> SeqStamps {
        let mut v: SeqStamps = self
            .stamps
            .iter()
            .filter(|((t, _, c, d), _)| t == topic && c == who && *d == dir)
            .map(|((_, seq, _, _), &ts)| (*seq, ts))
            .collect();
        v.sort_unstable();
        v
    }

    /// Checks a *trigger* dependency (`component` publishes one `out_topic`
    /// message per `in_topic` message, in order): pairing the k-th receipt
    /// with the k-th production, each receipt must not postdate its
    /// production. This automates Lemma 4's intra-component constraint for
    /// pipeline nodes without naming individual sequence numbers.
    pub fn check_trigger_dependency(
        &self,
        in_topic: &Topic,
        component: &NodeId,
        out_topic: &Topic,
    ) -> Vec<CausalityViolation> {
        let ins = self.stamps_for(in_topic, component, DirKey::In);
        let outs = self.stamps_for(out_topic, component, DirKey::Out);
        ins.iter()
            .zip(outs.iter())
            .filter(|((_, t_in), (_, t_out))| t_in > t_out)
            .map(|((in_seq, t_in), (out_seq, t_out))| CausalityViolation {
                constraint: format!(
                    "t({component} in {in_topic}#{in_seq}) ≤ t({component} out {out_topic}#{out_seq})"
                ),
                earlier_ns: *t_in,
                later_ns: *t_out,
                suspects: vec![component.clone()],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlp_logger::LogEntry;

    fn entry(topic: &str, seq: u64, who: &str, dir: Direction, t: u64) -> LogEntry {
        let mut e = LogEntry::naive(
            NodeId::new(who),
            Topic::new(topic),
            dir,
            seq,
            t,
            vec![0u8; 4],
        );
        e.peer = None;
        e
    }

    /// The faithful chain of Figure 10(b): x → y → z.
    fn faithful_entries() -> Vec<LogEntry> {
        vec![
            entry("image", 3, "x", Direction::Out, 100),
            entry("image", 3, "y", Direction::In, 110),
            entry("feature", 7, "y", Direction::Out, 120),
            entry("feature", 7, "z", Direction::In, 130),
        ]
    }

    fn chain() -> Vec<(FlowStep, NodeId)> {
        vec![
            (
                FlowStep {
                    topic: Topic::new("image"),
                    seq: 3,
                    subscriber: NodeId::new("y"),
                },
                NodeId::new("x"),
            ),
            (
                FlowStep {
                    topic: Topic::new("feature"),
                    seq: 7,
                    subscriber: NodeId::new("z"),
                },
                NodeId::new("y"),
            ),
        ]
    }

    #[test]
    fn faithful_chain_has_no_violations() {
        let entries = faithful_entries();
        let c = CausalityChecker::from_entries(&entries);
        assert!(c.check_chain(&chain()).is_empty());
    }

    #[test]
    fn middle_component_inversion_detected() {
        // Figure 10(c): y alone skews so that t_{y,out} < t_{y,in} — the
        // inversion is visible at y itself.
        let mut entries = faithful_entries();
        entries[1].timestamp_ns = 125; // y in
        entries[2].timestamp_ns = 105; // y out
        let c = CausalityChecker::from_entries(&entries);
        let v = c.check_chain(&chain());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].suspects, vec![NodeId::new("y")]);
    }

    #[test]
    fn hop_inversion_blames_the_pair() {
        let mut entries = faithful_entries();
        entries[0].timestamp_ns = 115; // x out after y in
        let c = CausalityChecker::from_entries(&entries);
        let v = c.check_chain(&chain());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].suspects.len(), 2);
    }

    #[test]
    fn full_collusion_reorder_is_internally_consistent() {
        // Figure 10(d): when ALL of x, y, z collude they can present
        // t_{y,out} < t_{z,in} < t_{x,out} < t_{y,in} with every *pairwise*
        // constraint of the declared chain still... violated? No: the
        // re-ordering swaps the two transmissions entirely. The point of
        // Lemma 4 is that the colluders present a log in which the
        // constraints hold for the *swapped* precedence — i.e. validity of
        // each hop is preserved, precedence is not provable wrong.
        let entries = vec![
            entry("image", 3, "x", Direction::Out, 300),
            entry("image", 3, "y", Direction::In, 310),
            entry("feature", 7, "y", Direction::Out, 100),
            entry("feature", 7, "z", Direction::In, 110),
        ];
        let c = CausalityChecker::from_entries(&entries);
        // Each hop is locally consistent...
        assert!(c
            .check_hop(&Topic::new("image"), 3, &NodeId::new("x"), &NodeId::new("y"))
            .is_none());
        assert!(c
            .check_hop(&Topic::new("feature"), 7, &NodeId::new("y"), &NodeId::new("z"))
            .is_none());
        // ...but the declared chain (image before feature) is caught only
        // through y's processing constraint — which requires y's entries,
        // i.e. it is detectable unless all three collude on the story.
        let v = c.check_chain(&chain());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].suspects, vec![NodeId::new("y")]);
    }

    #[test]
    fn missing_entries_yield_no_verdict() {
        let entries = vec![entry("image", 3, "x", Direction::Out, 100)];
        let c = CausalityChecker::from_entries(&entries);
        assert!(c
            .check_hop(&Topic::new("image"), 3, &NodeId::new("x"), &NodeId::new("y"))
            .is_none());
        assert!(c.check_chain(&chain()).is_empty());
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        let mut entries = faithful_entries();
        entries[1].timestamp_ns = 100; // equal to x out
        let c = CausalityChecker::from_entries(&entries);
        assert!(c.check_chain(&chain()).is_empty());
    }

    #[test]
    fn trigger_dependency_pairs_by_order() {
        // y consumes image #3, #4 and produces feature #7, #8; the second
        // pair is inverted.
        let entries = vec![
            entry("image", 3, "y", Direction::In, 100),
            entry("feature", 7, "y", Direction::Out, 110),
            entry("image", 4, "y", Direction::In, 220),
            entry("feature", 8, "y", Direction::Out, 200),
        ];
        let c = CausalityChecker::from_entries(&entries);
        let v = c.check_trigger_dependency(
            &Topic::new("image"),
            &NodeId::new("y"),
            &Topic::new("feature"),
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].constraint.contains("image#4"));
        assert_eq!(v[0].suspects, vec![NodeId::new("y")]);
    }

    #[test]
    fn trigger_dependency_tolerates_unequal_counts() {
        // More receipts than productions (pipeline still warming up).
        let entries = vec![
            entry("image", 1, "y", Direction::In, 100),
            entry("image", 2, "y", Direction::In, 150),
            entry("feature", 1, "y", Direction::Out, 120),
        ];
        let c = CausalityChecker::from_entries(&entries);
        assert!(c
            .check_trigger_dependency(
                &Topic::new("image"),
                &NodeId::new("y"),
                &Topic::new("feature")
            )
            .is_empty());
    }
}
