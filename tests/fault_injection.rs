//! Fault-injection soak: the full topology under seeded transport faults
//! (drops, delays, forced disconnects) plus a mid-run trusted-logger
//! outage, and the accountability pipeline's delivery guarantees across a
//! log-server restart.
//!
//! Three properties from the robustness work are proven here:
//!
//! 1. **No deadlocks** — every test finishes under an explicit wall-clock
//!    bound even while links flap, frames vanish, and the logger dies.
//! 2. **Classification is fault-invariant** — the auditor's verdict on the
//!    deposited entries of a faulted run is indistinguishable from the
//!    fault-free run: every entry Valid or Unproven, nobody convicted.
//! 3. **Nothing vanishes unaccounted** — entries produced by a faulted run
//!    and shipped through a `RemoteLogClient` across a server crash are
//!    each either delivered or counted as spilled.

use adlp::audit::{AuditReport, EntryClass, ViolationKind};
use adlp::core::{FaultConfig, ReconnectConfig, ResilienceConfig};
use adlp::logger::{Direction, LogEntry, LogServer, RemoteLogClient, RemoteLogEndpoint};
use adlp::pubsub::{NodeId, Topic};
use adlp::sim::{fanout_app, PayloadKind, Scenario};
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Generous ceiling for one test body; a deadlock anywhere in the
/// transport, retry, or logging threads would blow straight through it.
const WALL_CLOCK_BOUND: Duration = Duration::from_secs(60);

fn resilient() -> ResilienceConfig {
    ResilienceConfig::new()
        .with_ack_timeout(Duration::from_millis(15))
        .with_max_retries(1000)
        .with_retry_backoff(Duration::from_millis(5))
}

/// Every deposited entry classified Valid or Unproven, nothing rejected,
/// nobody convicted — the signature of a run whose log tells the truth.
fn assert_classifies_clean(audit: &AuditReport, label: &str) {
    assert!(
        audit.rejected_entries.is_empty(),
        "{label}: genuine entries must never be rejected: {:?}",
        audit.rejected_entries.len()
    );
    assert!(
        audit.unfaithful_components().is_empty(),
        "{label}: honest nodes must not be convicted: {:?}",
        audit.unfaithful_components()
    );
    let acceptable =
        |c: &Option<EntryClass>| c.as_ref().is_none_or(|c| matches!(c, EntryClass::Valid | EntryClass::Unproven));
    for link in &audit.links {
        assert!(
            acceptable(&link.publisher_entry) && acceptable(&link.subscriber_entry),
            "{label}: unexpected class on {:?} seq {}: {:?} / {:?}",
            link.topic,
            link.seq,
            link.publisher_entry,
            link.subscriber_entry
        );
    }
}

#[test]
fn seeded_faults_classify_like_the_fault_free_run() {
    let t0 = Instant::now();

    // Baseline: the same topology with no faults and no deadlines.
    let baseline = Scenario::new(fanout_app(PayloadKind::Custom(64), 2, 100.0))
        .key_bits(512)
        .duration(Duration::from_millis(500))
        .run();
    assert_classifies_clean(&baseline.audit(), "fault-free");

    // Faulted: drops and delays on every outgoing link, plus a forced
    // disconnect late in the run; ack deadlines re-send what the link eats.
    let faulted = Scenario::new(fanout_app(PayloadKind::Custom(64), 2, 100.0))
        .key_bits(512)
        .duration(Duration::from_millis(500))
        .resilience(resilient())
        .faults_for(
            "feeder",
            FaultConfig::seeded(11)
                .with_drop_rate(0.25)
                .with_delay(0.2, Duration::from_millis(10))
                .with_disconnect_after(40),
        )
        .run();
    assert!(
        faulted.node_stats["sink0"].received > 5,
        "retries must keep data flowing: {:?}",
        faulted.node_stats
    );
    // The auditor cannot tell the difference: same clean classification.
    assert_classifies_clean(&faulted.audit(), "faulted");

    assert!(
        t0.elapsed() < WALL_CLOCK_BOUND,
        "deadlock suspected: {:?}",
        t0.elapsed()
    );
}

#[test]
fn mid_run_logger_outage_with_faults_is_survivable() {
    let t0 = Instant::now();
    let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 2, 100.0))
        .key_bits(512)
        .duration(Duration::from_millis(700))
        .resilience(resilient())
        .faults_for(
            "feeder",
            FaultConfig::seeded(13)
                .with_drop_rate(0.2)
                .with_delay(0.2, Duration::from_millis(10)),
        )
        .logger_outage_after(Duration::from_millis(250))
        .run();

    // The data plane outlived the trusted logger (§V-B failure isolation).
    assert!(
        report.node_stats["sink0"].received > 20,
        "stats: {:?}",
        report.node_stats
    );
    assert!(report.store_len > 0, "pre-outage prefix must survive");

    // The logger cut can split a publication/receipt pair — reported as a
    // hidden record — but must never manufacture falsification, fabrication,
    // or replay evidence against honest nodes.
    let audit = report.audit();
    assert!(audit.rejected_entries.is_empty());
    for (who, verdict) in audit.verdicts.iter() {
        for v in &verdict.violations {
            assert!(
                matches!(
                    v.kind,
                    ViolationKind::HidPublication | ViolationKind::HidReceipt
                ),
                "outage produced a bogus conviction of {who:?}: {v:?}"
            );
        }
    }

    assert!(
        t0.elapsed() < WALL_CLOCK_BOUND,
        "deadlock suspected: {:?}",
        t0.elapsed()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exact spill accounting under arbitrary outage/reconnect
    /// interleavings: a phase script alternates the server between up and
    /// down while the client keeps submitting. At every quiescent point the
    /// conservation law `submitted == delivered + buffered + spilled` must
    /// hold, the buffer must drain to zero after the final reconnect, and —
    /// because the buffer state at each down phase is fully determined by
    /// the script — the final `spilled` counter must equal the model's
    /// prediction *exactly*, not just bound it.
    #[test]
    fn spilled_is_exactly_accounted_across_outage_interleavings(
        cap in 1usize..6,
        phases in proptest::collection::vec((any::<bool>(), 0u64..10), 1..5),
    ) {
        let t0 = Instant::now();
        let entry = |seq: u64| {
            LogEntry::naive(
                NodeId::new("cam"),
                Topic::new("image"),
                Direction::Out,
                seq,
                seq,
                vec![0xA5; 64],
            )
        };

        let mut server = Some(LogServer::spawn());
        let mut endpoint = Some(
            RemoteLogEndpoint::bind(server.as_ref().unwrap().handle()).expect("bind"),
        );
        let addr = endpoint.as_ref().unwrap().addr();
        let mut client = RemoteLogClient::connect_with(
            addr,
            ReconnectConfig::new()
                .with_buffer_capacity(cap)
                .with_redial_backoff(Duration::from_millis(5)),
        )
        .expect("connect");
        let stats = std::sync::Arc::clone(client.stats());

        let mut seq = 0u64;
        let mut model_buffered = 0u64;
        let mut model_spilled = 0u64;
        for &(up, n) in &phases {
            if up && server.is_none() {
                // Outage ends: a fresh server on the same address; the
                // client redials and drains its buffer.
                let s = LogServer::spawn();
                endpoint = Some(rebind(s.handle(), addr));
                server = Some(s);
                prop_assert!(client.flush(Duration::from_secs(10)), "reconnect flush");
                model_buffered = 0;
            } else if !up && server.is_some() {
                // Outage begins: settle in-flight entries first so the
                // buffer state entering the outage is exactly zero.
                prop_assert!(client.flush(Duration::from_secs(10)), "pre-kill flush");
                drop(endpoint.take());
                server.take().unwrap().kill();
                let deadline = Instant::now() + Duration::from_secs(5);
                while stats.snapshot().connected {
                    prop_assert!(Instant::now() < deadline, "outage never detected");
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            for _ in 0..n {
                prop_assert!(client.submit(&entry(seq)).is_accepted());
                seq += 1;
            }
            if server.is_none() {
                // Down-phase submissions fill the bounded buffer; the
                // overflow is spilled, deterministically.
                let fits = (cap as u64).saturating_sub(model_buffered).min(n);
                model_buffered += fits;
                model_spilled += n - fits;
            }
        }

        // Quiesce: bring the server back one last time and drain.
        if server.is_none() {
            let s = LogServer::spawn();
            endpoint = Some(rebind(s.handle(), addr));
            server = Some(s);
        }
        prop_assert!(client.flush(Duration::from_secs(10)), "final flush");
        let _ = (&endpoint, &server);

        let snap = stats.snapshot();
        prop_assert_eq!(snap.submitted, seq);
        prop_assert_eq!(snap.buffered, 0);
        prop_assert_eq!(snap.delivered + snap.spilled, snap.submitted);
        prop_assert_eq!(snap.spilled, model_spilled);
        prop_assert!(t0.elapsed() < WALL_CLOCK_BOUND);
    }
}

/// Re-binds the endpoint on `addr`, retrying while the OS releases the
/// port from the previous listener.
fn rebind(handle: adlp::logger::LoggerHandle, addr: std::net::SocketAddr) -> RemoteLogEndpoint {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match RemoteLogEndpoint::bind_on(handle.clone(), addr) {
            Ok(ep) => return ep,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("rebind failed: {e}"),
        }
    }
}

#[test]
fn entries_from_a_faulted_run_deposit_or_spill_across_a_server_restart() {
    let t0 = Instant::now();

    // Produce real protocol entries under transport faults.
    let report = Scenario::new(fanout_app(PayloadKind::Custom(64), 1, 100.0))
        .key_bits(512)
        .duration(Duration::from_millis(400))
        .resilience(resilient())
        .faults_for(
            "feeder",
            FaultConfig::seeded(17)
                .with_drop_rate(0.2)
                .with_delay(0.2, Duration::from_millis(10)),
        )
        .run();
    let entries: Vec<LogEntry> = report
        .logger
        .store()
        .entries()
        .into_iter()
        .map(|e| e.expect("store intact"))
        .collect();
    assert!(entries.len() >= 10, "need material: {}", entries.len());

    // Ship them through a remote client that loses its server mid-stream.
    let first_half = entries.len() / 2;
    let server_a = LogServer::spawn();
    let endpoint_a = RemoteLogEndpoint::bind(server_a.handle()).expect("bind");
    let addr = endpoint_a.addr();
    let mut client = RemoteLogClient::connect_with(
        addr,
        ReconnectConfig::new()
            .with_buffer_capacity(4)
            .with_redial_backoff(Duration::from_millis(10)),
    )
    .expect("connect");

    for e in &entries[..first_half] {
        assert!(client.submit(e).is_accepted());
    }
    assert!(client.flush(Duration::from_secs(10)), "pre-crash flush");
    assert_eq!(client.stats().snapshot().delivered, first_half as u64);

    // The server crashes; the client notices.
    drop(endpoint_a);
    server_a.kill();
    let stats = std::sync::Arc::clone(client.stats());
    let deadline = Instant::now() + Duration::from_secs(5);
    while stats.snapshot().connected {
        assert!(Instant::now() < deadline, "outage never detected");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Submissions during the outage: 4 buffered, the rest counted spilled.
    // The worker is still alive, so every push is accepted into the client;
    // the spill accounting happens inside the worker.
    for e in &entries[first_half..] {
        assert!(client.submit(e).is_accepted());
    }

    // A fresh server comes up on the same address; the client reconnects
    // and drains its buffer.
    let server_b = LogServer::spawn();
    let _endpoint_b = rebind(server_b.handle(), addr);
    assert!(client.flush(Duration::from_secs(10)), "post-restart flush");

    let snap = stats.snapshot();
    let total = entries.len() as u64;
    assert_eq!(snap.submitted, total);
    assert_eq!(snap.buffered, 0, "buffer drained after reconnect");
    assert_eq!(
        snap.delivered + snap.spilled,
        total,
        "every entry deposited or accounted: {snap:?}"
    );
    assert_eq!(snap.delivered, first_half as u64 + 4);
    assert_eq!(snap.spilled, total - first_half as u64 - 4);

    assert!(
        t0.elapsed() < WALL_CLOCK_BOUND,
        "deadlock suspected: {:?}",
        t0.elapsed()
    );
}
