//! Property-based tests over the protocol + auditor: Theorem 1 under
//! randomized behavior assignments, and randomized multi-link topologies.

use adlp::audit::Auditor;
use adlp::core::{AdlpNodeBuilder, BehaviorProfile, LinkRole, LogBehavior, Scheme};
use adlp::logger::LogServer;
use adlp::pubsub::{Master, NodeId, Topic};
use proptest::prelude::*;
use rand::SeedableRng;
use std::time::Duration;

#[derive(Debug, Clone, Copy, PartialEq)]
enum B {
    Faithful,
    Hide,
    Falsify,
}

fn arb_behavior() -> impl Strategy<Value = B> {
    prop_oneof![Just(B::Faithful), Just(B::Hide), Just(B::Falsify)]
}

fn to_profile(b: B, role: LinkRole, topic: &str) -> BehaviorProfile {
    let p = BehaviorProfile::faithful();
    match b {
        B::Faithful => p,
        B::Hide => p.with_link(role, Topic::new(topic), LogBehavior::Hide),
        B::Falsify => p.with_link(role, Topic::new(topic), LogBehavior::Falsify),
    }
}

fn wait_until(pred: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(std::time::Instant::now() < deadline, "timed out");
        std::thread::sleep(Duration::from_millis(2));
    }
}

proptest! {
    // Each case spins up real threads + RSA keys; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 1, randomized: whatever (non-colluding) behaviors the two
    /// ends of a link adopt, any component that behaved faithfully is never
    /// convicted, and any unfaithful behavior visible to a faithful
    /// counterpart is convicted.
    #[test]
    fn theorem1_randomized(pub_b in arb_behavior(), sub_b in arb_behavior(), msgs in 1usize..4) {
        let master = Master::new();
        let server = LogServer::spawn();
        let mut rng = rand::rngs::StdRng::seed_from_u64(msgs as u64);
        let p = AdlpNodeBuilder::new("pubber")
            .scheme(Scheme::adlp())
            .key_bits(512)
            .behavior(to_profile(pub_b, LinkRole::Publisher, "t"))
            .build(&master, &server.handle(), &mut rng)
            .unwrap();
        let s = AdlpNodeBuilder::new("subber")
            .scheme(Scheme::adlp())
            .key_bits(512)
            .behavior(to_profile(sub_b, LinkRole::Subscriber, "t"))
            .build(&master, &server.handle(), &mut rng)
            .unwrap();
        let publisher = p.advertise("t").unwrap();
        let _sub = s.subscribe("t", |_| {}).unwrap();
        for i in 0..msgs {
            wait_until(|| p.pending_acks() == 0);
            prop_assert_eq!(publisher.publish(&[i as u8; 48]).unwrap().sent, 1);
        }
        wait_until(|| p.pending_acks() == 0);
        p.flush().unwrap();
        s.flush().unwrap();

        let report = Auditor::new(server.handle().keys().clone())
            .with_topology(master.topology())
            .audit_store(server.handle().store());

        let pub_verdict = report.verdicts.get(&NodeId::new("pubber"));
        let sub_verdict = report.verdicts.get(&NodeId::new("subber"));

        // Faithful parties are never convicted (Theorem 1).
        if pub_b == B::Faithful {
            prop_assert!(pub_verdict.is_none_or(|v| v.is_faithful()), "{report:?}");
        }
        if sub_b == B::Faithful {
            prop_assert!(sub_verdict.is_none_or(|v| v.is_faithful()), "{report:?}");
        }
        // An unfaithful party facing a faithful counterpart is convicted
        // (Theorem 2 for this link).
        if pub_b != B::Faithful && sub_b == B::Faithful {
            prop_assert!(pub_verdict.is_some_and(|v| !v.is_faithful()), "{report:?}");
        }
        if sub_b != B::Faithful && pub_b == B::Faithful {
            prop_assert!(sub_verdict.is_some_and(|v| !v.is_faithful()), "{report:?}");
        }
    }
}
