//! Soak tests: the full application graph under sustained load, with and
//! without misbehavior, checked end-to-end (traffic flowed, logs audited,
//! store tamper-evident).

use adlp::core::{BehaviorProfile, LinkRole, LogBehavior};
use adlp::pubsub::Topic;
use adlp::sim::{self_driving_app, AppSpec, NodeSpec, PayloadKind, Scenario};
use std::time::Duration;

#[test]
fn self_driving_soak_faithful() {
    let report = Scenario::new(self_driving_app())
        .key_bits(512)
        .duration(Duration::from_millis(1500))
        .run();
    // The whole pipeline moved real data.
    assert!(report.node_stats["imgfeed"].published >= 10);
    assert!(report.node_stats["actuator"].received >= 5);
    // The logger holds a consistent, tamper-evident record.
    assert!(report.store_len > 50);
    report.logger.store().verify_chain().expect("chain intact");
    // The audit is clean.
    let audit = report.audit();
    assert!(
        audit.unfaithful_components().is_empty(),
        "faithful soak must convict nobody: {:?}",
        audit.unfaithful_components()
    );
    assert!(audit.all_clear(), "hidden={:?} rejected={}",
        audit.hidden.len(), audit.rejected_entries.len());
}

#[test]
fn wide_fanout_many_components() {
    // One sensor, eight consumers, all ADLP: exercises per-subscriber
    // signing amortization and concurrent logging threads.
    let mut app = AppSpec::new().with_node(NodeSpec::new("sensor").publishes_periodic(
        "blob",
        PayloadKind::Custom(4096),
        60.0,
    ));
    for i in 0..8 {
        app = app.with_node(NodeSpec::new(format!("worker{i}")).subscribes_to("blob"));
    }
    let report = Scenario::new(app)
        .key_bits(512)
        .duration(Duration::from_millis(1000))
        .run();
    for i in 0..8 {
        assert!(
            report.node_stats[&format!("worker{i}")].received > 0,
            "worker{i} starved"
        );
    }
    let audit = report.audit();
    assert!(audit.unfaithful_components().is_empty());
}

#[test]
fn soak_with_three_simultaneous_liars() {
    // Three distinct misbehaviors in one running system; the audit must
    // identify exactly those three and nobody else.
    let report = Scenario::new(self_driving_app())
        .key_bits(512)
        .duration(Duration::from_millis(1500))
        .behavior(
            "signrec",
            BehaviorProfile::faithful().with_link(
                LinkRole::Subscriber,
                Topic::new("image"),
                LogBehavior::Falsify,
            ),
        )
        .behavior(
            "obsdet",
            BehaviorProfile::faithful().with_link(
                LinkRole::Subscriber,
                Topic::new("scan"),
                LogBehavior::Hide,
            ),
        )
        .behavior(
            "planner",
            BehaviorProfile::faithful().with_link(
                LinkRole::Publisher,
                Topic::new("steering"),
                LogBehavior::Falsify,
            ),
        )
        .run();
    let audit = report.audit();
    let mut unfaithful: Vec<String> = audit
        .unfaithful_components()
        .into_iter()
        .map(|(id, _)| id.to_string())
        .collect();
    unfaithful.sort();
    assert_eq!(unfaithful, vec!["obsdet", "planner", "signrec"], "{audit:?}");
}
