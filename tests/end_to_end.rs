//! Cross-crate integration tests: full stack (crypto → pubsub → core →
//! logger → audit → sim) exercised through the public `adlp` facade.

use adlp::audit::{Auditor, EntryClass};
use adlp::core::{AdlpNodeBuilder, BehaviorProfile, LinkRole, LogBehavior, Scheme};
use adlp::logger::merkle::MerkleTree;
use adlp::logger::{Direction, LogServer};
use adlp::pubsub::{Master, NodeId, Topic, TransportKind};
use adlp::sim::{fanout_app, self_driving_app, PayloadKind, Scenario};
use rand::SeedableRng;
use std::time::Duration;

fn wait_until(pred: impl Fn() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(std::time::Instant::now() < deadline, "timed out");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn full_stack_over_tcp_transport() {
    // The paper's deployment: point-to-point TCP between nodes.
    let master = Master::new();
    let server = LogServer::spawn();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let p = AdlpNodeBuilder::new("cam")
        .scheme(Scheme::adlp())
        .key_bits(512)
        .transport(TransportKind::Tcp)
        .build(&master, &server.handle(), &mut rng)
        .unwrap();
    let s = AdlpNodeBuilder::new("det")
        .scheme(Scheme::adlp())
        .key_bits(512)
        .build(&master, &server.handle(), &mut rng)
        .unwrap();
    let publisher = p.advertise("image").unwrap();
    let _sub = s.subscribe("image", |_| {}).unwrap();
    // The TCP link attaches asynchronously; a publish before that is a
    // silent no-op (sent == 0).
    wait_until(|| publisher.connection_count() == 1);
    for i in 0..3 {
        // Wait for the previous ack so gating never skips (and seqs stay
        // contiguous).
        wait_until(|| p.pending_acks() == 0);
        assert_eq!(publisher.publish(&[i as u8; 10_000]).unwrap().sent, 1);
    }
    wait_until(|| p.pending_acks() == 0);
    p.flush().unwrap();
    s.flush().unwrap();

    let report = Auditor::new(server.handle().keys().clone())
        .with_topology(master.topology())
        .audit_store(server.handle().store());
    assert_eq!(report.link_count(), 3);
    assert!(report.all_clear(), "{report:?}");
}

#[test]
fn tamper_evidence_and_merkle_commitment_after_real_run() {
    let report = Scenario::new(fanout_app(PayloadKind::Custom(256), 2, 40.0))
        .key_bits(512)
        .duration(Duration::from_millis(400))
        .run();
    let store = report.logger.store();
    assert!(store.len() > 4);
    store.verify_chain().expect("chain intact");

    // Commit to the log and prove one record's inclusion.
    let leaves = store.record_hashes();
    let tree = MerkleTree::build(&leaves);
    let root = tree.root().unwrap();
    let idx = store.len() / 2;
    let proof = tree.prove(idx).unwrap();
    assert!(MerkleTree::verify(&root, leaves.len(), &leaves[idx], &proof));

    // Tamper with a stored record: the chain breaks at exactly that index.
    store
        .tamper_with_record(idx, b"forged bytes".to_vec())
        .unwrap();
    let err = store.verify_chain().unwrap_err();
    assert_eq!(err.first_bad_index, idx);
}

#[test]
fn naive_scheme_cannot_resolve_disputes_but_adlp_can() {
    // The motivating claim of §III-B: under the naive scheme a dispute is
    // undecidable — under ADLP the auditor attributes it.
    for scheme in [Scheme::Base, Scheme::adlp()] {
        let master = Master::new();
        let server = LogServer::spawn();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let p = AdlpNodeBuilder::new("cam")
            .scheme(scheme.clone())
            .key_bits(512)
            .build(&master, &server.handle(), &mut rng)
            .unwrap();
        let s = AdlpNodeBuilder::new("det")
            .scheme(scheme.clone())
            .key_bits(512)
            .behavior(BehaviorProfile::faithful().with_link(
                LinkRole::Subscriber,
                Topic::new("image"),
                LogBehavior::Falsify,
            ))
            .build(&master, &server.handle(), &mut rng)
            .unwrap();
        let publisher = p.advertise("image").unwrap();
        let _sub = s.subscribe("image", |_| {}).unwrap();
        publisher.publish(&[1u8; 128]).unwrap();
        wait_until(|| s.stats().snapshot().received == 1);
        std::thread::sleep(Duration::from_millis(30));
        p.flush().unwrap();
        s.flush().unwrap();

        let entries: Vec<_> = server
            .handle()
            .store()
            .entries()
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(entries.len(), 2);
        let pub_e = entries.iter().find(|e| e.direction == Direction::Out).unwrap();
        let sub_e = entries.iter().find(|e| e.direction == Direction::In).unwrap();
        // The records conflict in both schemes.
        assert_ne!(pub_e.payload.digest(), sub_e.payload.digest());

        let report = Auditor::new(server.handle().keys().clone())
            .with_topology(master.topology())
            .audit_store(server.handle().store());
        if scheme == Scheme::Base {
            // Naive entries carry no signatures: the auditor can see the
            // conflict but attributes nothing.
            assert!(report.verdicts.values().all(|v| v.is_faithful()));
        } else {
            // ADLP pins the falsification on the subscriber.
            let det = &report.verdicts[&NodeId::new("det")];
            assert!(!det.is_faithful());
            assert!(report.verdicts[&NodeId::new("cam")].is_faithful());
        }
    }
}

#[test]
fn self_driving_scenario_with_one_unfaithful_node_detected() {
    let report = Scenario::new(self_driving_app())
        .key_bits(512)
        .duration(Duration::from_millis(700))
        .behavior(
            "signrec",
            BehaviorProfile::faithful().with_link(
                LinkRole::Subscriber,
                Topic::new("image"),
                LogBehavior::Falsify,
            ),
        )
        .run();
    let audit = report.audit();
    let unfaithful: Vec<_> = audit
        .unfaithful_components()
        .into_iter()
        .map(|(id, _)| id.clone())
        .collect();
    assert!(
        unfaithful.contains(&NodeId::new("signrec")),
        "unfaithful: {unfaithful:?}"
    );
    // Nobody else convicted.
    assert_eq!(unfaithful.len(), 1, "{unfaithful:?}");
}

#[test]
fn mixed_schemes_interoperate() {
    // A Base-scheme subscriber consuming from an ADLP publisher must still
    // receive data (it just cannot strip the signature — so ADLP nodes only
    // interoperate with ADLP peers; mixed graphs run scheme-per-node but
    // per *link* both ends must match. Here: two separate links.)
    let master = Master::new();
    let server = LogServer::spawn();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let adlp_pub = AdlpNodeBuilder::new("a")
        .scheme(Scheme::adlp())
        .key_bits(512)
        .build(&master, &server.handle(), &mut rng)
        .unwrap();
    let adlp_sub = AdlpNodeBuilder::new("b")
        .scheme(Scheme::adlp())
        .key_bits(512)
        .build(&master, &server.handle(), &mut rng)
        .unwrap();
    let base_pub = AdlpNodeBuilder::new("c")
        .scheme(Scheme::Base)
        .build(&master, &server.handle(), &mut rng)
        .unwrap();
    let base_sub = AdlpNodeBuilder::new("d")
        .scheme(Scheme::Base)
        .build(&master, &server.handle(), &mut rng)
        .unwrap();

    let p1 = adlp_pub.advertise("t1").unwrap();
    let _s1 = adlp_sub.subscribe("t1", |_| {}).unwrap();
    let p2 = base_pub.advertise("t2").unwrap();
    let _s2 = base_sub.subscribe("t2", |_| {}).unwrap();
    p1.publish(&[1u8; 32]).unwrap();
    p2.publish(&[2u8; 32]).unwrap();
    wait_until(|| {
        adlp_sub.stats().snapshot().received == 1 && base_sub.stats().snapshot().received == 1
    });
    std::thread::sleep(Duration::from_millis(30));
    for n in [&adlp_pub, &adlp_sub, &base_pub, &base_sub] {
        n.flush().unwrap();
    }
    // 2 ADLP entries + 2 base entries.
    assert_eq!(server.handle().store().len(), 4);
}

#[test]
fn audit_classifies_unproven_publication() {
    // Publisher entry with no ack and no subscriber record → Unproven, not
    // Invalid (a faithful publisher facing a dead subscriber lands here).
    let master = Master::new();
    let server = LogServer::spawn();
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let p = AdlpNodeBuilder::new("cam")
        .scheme(Scheme::adlp())
        .key_bits(512)
        .build(&master, &server.handle(), &mut rng)
        .unwrap();
    let s = AdlpNodeBuilder::new("det")
        .scheme(Scheme::adlp())
        .key_bits(512)
        .behavior(
            BehaviorProfile::faithful()
                .withholding_acks(Topic::new("image"))
                .with_link(LinkRole::Subscriber, Topic::new("image"), LogBehavior::Hide),
        )
        .build(&master, &server.handle(), &mut rng)
        .unwrap();
    let publisher = p.advertise("image").unwrap();
    let _sub = s.subscribe("image", |_| {}).unwrap();
    publisher.publish(&[1u8; 64]).unwrap();
    wait_until(|| s.stats().snapshot().received == 1);
    p.flush().unwrap();
    s.flush().unwrap();

    let report = Auditor::new(server.handle().keys().clone())
        .with_topology(master.topology())
        .audit_store(server.handle().store());
    assert_eq!(report.links.len(), 1);
    assert_eq!(report.links[0].publisher_entry, Some(EntryClass::Unproven));
    // Unproven is not a conviction: cam has no violations on record.
    assert!(report
        .verdicts
        .get(&NodeId::new("cam"))
        .is_none_or(|v| v.is_faithful()));
}
